(* Multi-tenant SaaS (§2.1): a shared-schema order-management app where
   every table carries a tenant id and co-location keeps each tenant's
   relational graph — joins and all — on one node.

     dune exec examples/multi_tenant_saas.exe
*)

let () =
  let cluster = Cluster.Topology.create ~workers:4 () in
  let citus = Citus.Api.install ~shard_count:16 cluster in
  let s = Citus.Api.connect citus in
  let exec sql = Engine.Instance.exec s sql in
  let show r =
    List.iter
      (fun row ->
        print_endline
          ("  " ^ String.concat " | "
                    (Array.to_list (Array.map Datum.to_display row))))
      r.Engine.Instance.rows
  in
  (* the classic SaaS schema: tenants own stores, products, orders *)
  ignore (exec "CREATE TABLE stores (tenant_id bigint, store_id bigint, name text, \
                PRIMARY KEY (tenant_id, store_id))");
  ignore (exec "CREATE TABLE products (tenant_id bigint, product_id bigint, \
                title text, price double precision, attrs jsonb, \
                PRIMARY KEY (tenant_id, product_id))");
  ignore (exec "CREATE TABLE orders (tenant_id bigint, order_id bigint, \
                store_id bigint, product_id bigint, quantity bigint, \
                PRIMARY KEY (tenant_id, order_id))");
  (* shared lookup data every tenant joins against: a reference table *)
  ignore (exec "CREATE TABLE currencies (code text PRIMARY KEY, rate double precision)");
  ignore (exec "SELECT create_distributed_table('stores', 'tenant_id')");
  ignore (exec "SELECT create_distributed_table('products', 'tenant_id', 'stores')");
  ignore (exec "SELECT create_distributed_table('orders', 'tenant_id', 'stores')");
  ignore (exec "SELECT create_reference_table('currencies')");
  ignore (exec "INSERT INTO currencies VALUES ('USD', 1.0), ('EUR', 1.08)");
  (* onboard a few tenants *)
  for tenant = 1 to 5 do
    ignore
      (exec
         (Printf.sprintf
            "INSERT INTO stores (tenant_id, store_id, name) VALUES (%d, 1, 'shop-%d')"
            tenant tenant));
    for p = 1 to 4 do
      ignore
        (exec
           (Printf.sprintf
              "INSERT INTO products (tenant_id, product_id, title, price, attrs) \
               VALUES (%d, %d, 'widget-%d', %f, '{\"color\": \"blue\"}')"
              tenant p p (9.99 +. float_of_int p)))
    done;
    for o = 1 to 6 do
      ignore
        (exec
           (Printf.sprintf
              "INSERT INTO orders (tenant_id, order_id, store_id, product_id, quantity) \
               VALUES (%d, %d, 1, %d, %d)"
              tenant o (1 + (o mod 4)) (1 + (o mod 3))))
    done
  done;
  (* the app's hot path: a complex per-tenant query — the router planner
     ships the whole thing, joins included, to the tenant's node *)
  print_endline "tenant 3 revenue per product (router planner, one node):";
  show
    (exec
       "SELECT products.title, sum(products.price * orders.quantity) AS revenue \
        FROM orders JOIN products ON orders.tenant_id = products.tenant_id \
        AND orders.product_id = products.product_id \
        WHERE orders.tenant_id = 3 AND products.tenant_id = 3 \
        GROUP BY products.title ORDER BY revenue DESC");
  (* a per-tenant transaction gets single-node ACID with no 2PC *)
  ignore (exec "BEGIN");
  ignore (exec "UPDATE products SET price = price * 1.1 WHERE tenant_id = 3");
  ignore
    (exec
       "INSERT INTO orders (tenant_id, order_id, store_id, product_id, quantity) \
        VALUES (3, 100, 1, 1, 2)");
  ignore (exec "COMMIT");
  print_endline "\nper-tenant transaction committed on a single node";
  (* cross-tenant analytics still work: pushdown planner, all nodes *)
  print_endline "\norders per tenant (logical pushdown planner, all nodes):";
  show
    (exec
       "SELECT tenant_id, count(*) FROM orders GROUP BY tenant_id ORDER BY tenant_id");
  (* schema migration: transactional, propagated to every shard *)
  ignore (exec "ALTER TABLE orders ADD COLUMN note text DEFAULT ''");
  print_endline "\ndistributed schema change applied to every shard";
  (* tenant 3 became a noisy neighbor: isolate it onto its own shard group
     and move it to a dedicated node (§2.1) *)
  let st = Citus.Api.coordinator_state citus in
  let move =
    Citus.Tenant.isolate_tenant_to_node st ~table:"stores" ~value:(Datum.Int 3)
      ~to_node:"worker4"
  in
  Printf.printf
    "\nisolated tenant 3 into shards %s and moved them to %s (%d rows)\n"
    (String.concat "," (List.map string_of_int move.Citus.Rebalancer.moved_shards))
    move.Citus.Rebalancer.to_node move.Citus.Rebalancer.rows_copied;
  (* everything still works, now from a dedicated node *)
  show
    (exec
       "SELECT count(*) FROM orders JOIN products ON orders.tenant_id = \
        products.tenant_id AND orders.product_id = products.product_id \
        WHERE orders.tenant_id = 3 AND products.tenant_id = 3");
  (* and the planner shows where it goes *)
  print_endline
    (Citus.Explain.explain st "SELECT count(*) FROM orders WHERE tenant_id = 3")
