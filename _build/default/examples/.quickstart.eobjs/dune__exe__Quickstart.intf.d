examples/quickstart.mli:
