examples/multi_tenant_saas.mli:
