examples/realtime_dashboard.ml: Array Datum Engine List Printf String Workloads
