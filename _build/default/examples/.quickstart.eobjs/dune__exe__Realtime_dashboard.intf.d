examples/realtime_dashboard.mli:
