examples/rebalance_demo.ml: Citus Cluster Datum Engine List Printf String
