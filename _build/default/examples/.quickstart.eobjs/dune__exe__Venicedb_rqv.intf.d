examples/venicedb_rqv.mli:
