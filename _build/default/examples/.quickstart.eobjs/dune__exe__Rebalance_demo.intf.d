examples/rebalance_demo.mli:
