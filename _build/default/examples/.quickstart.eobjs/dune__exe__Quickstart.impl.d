examples/quickstart.ml: Array Citus Cluster Datum Engine List Printf String
