examples/venicedb_rqv.ml: Array Citus Cluster Datum Engine List Printf Random String
