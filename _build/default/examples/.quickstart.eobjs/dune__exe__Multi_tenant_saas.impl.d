examples/multi_tenant_saas.ml: Array Citus Cluster Datum Engine List Printf String
