(* Elastic scale-out (§3.4): start on two workers, add a third, and let
   the shard rebalancer move shard groups onto it using the
   logical-replication-style move (snapshot copy + WAL catch-up + a brief
   write-blocked cutover). Queries keep their answers throughout.

     dune exec examples/rebalance_demo.exe
*)

let () =
  (* a third worker exists but starts inactive *)
  let cluster = Cluster.Topology.create ~workers:3 () in
  let citus = Citus.Api.install ~shard_count:12 ~active_workers:2 cluster in
  let s = Citus.Api.connect citus in
  let exec sql = Engine.Instance.exec s sql in
  let st = Citus.Api.coordinator_state citus in
  let print_distribution () =
    List.iter
      (fun (node, count) -> Printf.printf "  %-10s %d shards\n" node count)
      (Citus.Rebalancer.distribution st)
  in
  ignore (exec "CREATE TABLE readings (sensor bigint, v double precision)");
  ignore (exec "SELECT create_distributed_table('readings', 'sensor')");
  ignore (exec "CREATE TABLE sensors (sensor bigint, site text)");
  ignore (exec "SELECT create_distributed_table('sensors', 'sensor', 'readings')");
  for i = 1 to 300 do
    ignore
      (exec
         (Printf.sprintf "INSERT INTO readings (sensor, v) VALUES (%d, %f)"
            (1 + (i mod 50))
            (float_of_int i)));
    if i <= 50 then
      ignore
        (exec
           (Printf.sprintf "INSERT INTO sensors (sensor, site) VALUES (%d, 'site%d')"
              i (i mod 5)))
  done;
  let count () =
    match (exec "SELECT count(*) FROM readings").Engine.Instance.rows with
    | [ [| Datum.Int n |] ] -> n
    | _ -> -1
  in
  Printf.printf "before: %d readings\n" (count ());
  print_distribution ();
  (* the cluster grows *)
  ignore (exec "SELECT citus_add_node('worker3')");
  print_endline "\nadded worker3; rebalancing...";
  let moves = Citus.Rebalancer.rebalance st in
  List.iter
    (fun (m : Citus.Rebalancer.move) ->
      Printf.printf
        "  moved shards %s from %s to %s (%d rows copied, %d WAL records caught up)\n"
        (String.concat "," (List.map string_of_int m.moved_shards))
        m.from_node m.to_node m.rows_copied m.catchup_records)
    moves;
  print_endline "\nafter:";
  print_distribution ();
  Printf.printf "readings still intact: %d\n" (count ());
  (* co-located joins survive the move because shard groups moved together *)
  match
    (exec
       "SELECT count(*) FROM readings JOIN sensors ON readings.sensor = sensors.sensor")
      .Engine.Instance.rows
  with
  | [ [| Datum.Int n |] ] -> Printf.printf "co-located join still works: %d rows\n" n
  | _ -> failwith "join failed"
