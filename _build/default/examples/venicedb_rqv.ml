(* VeniceDB / Release Quality View (§5): the petabyte-scale Windows
   telemetry store, scaled down to one process.

   Raw measures are distributed by device id, pre-aggregated into
   co-located reports tables with distributed INSERT..SELECT, and the RQV
   dashboard runs the paper's signature query: an average over tens of
   millions of per-device averages, where the subquery groups by the
   distribution column so the logical pushdown planner parallelizes the
   whole thing.

     dune exec examples/venicedb_rqv.exe
*)

let () =
  let cluster = Cluster.Topology.create ~workers:8 () in
  let citus = Citus.Api.install ~shard_count:32 cluster in
  let s = Citus.Api.connect citus in
  let exec sql = Engine.Instance.exec s sql in
  let show r =
    List.iter
      (fun row ->
        print_endline
          ("  " ^ String.concat " | "
                    (Array.to_list (Array.map Datum.to_display row))))
      r.Engine.Instance.rows
  in
  (* measures: raw telemetry, distributed by device id *)
  ignore
    (exec
       "CREATE TABLE measures (deviceid bigint, at bigint, build text, \
        measure text, metric double precision)");
  ignore (exec "SELECT create_distributed_table('measures', 'deviceid')");
  (* reports: device-level pre-aggregation, co-located with measures *)
  ignore
    (exec
       "CREATE TABLE reports (deviceid bigint, build text, measure text, \
        n bigint, metric_sum double precision)");
  ignore (exec "SELECT create_distributed_table('reports', 'deviceid', 'measures')");
  (* ~10TB/day of telemetry, scaled down: COPY parallel ingest *)
  let rng = Random.State.make [| 5 |] in
  let lines =
    List.init 4000 (fun i ->
        let device = 1 + (i mod 400) in
        let build = Printf.sprintf "build-%d" (1 + (i mod 3)) in
        let measure = if i mod 2 = 0 then "boot_time" else "crash_rate" in
        Printf.sprintf "%d\t%d\t%s\t%s\t%f" device i build measure
          (Random.State.float rng 100.0))
  in
  let n = Engine.Instance.copy_in s ~table:"measures" ~columns:None lines in
  Printf.printf "ingested %d raw measures\n" n;
  (* device-level pre-aggregation: fully co-located INSERT..SELECT, the
     step VeniceDB runs every 20 minutes *)
  let r =
    exec
      "INSERT INTO reports (deviceid, build, measure, n, metric_sum) \
       SELECT deviceid, build, measure, count(*), sum(metric) \
       FROM measures GROUP BY deviceid, build, measure"
  in
  Printf.printf "pre-aggregated into %d report rows (co-located INSERT..SELECT)\n\n"
    r.Engine.Instance.affected;
  (* the RQV query: weigh by device, not by report volume. The subquery
     groups by deviceid (the distribution column) so it pushes down whole;
     the outer average is decomposed into partials (§5). *)
  print_endline "RQV: average per-device boot_time by build (pushdown plan):";
  show
    (exec
       "SELECT build, avg(device_avg) FROM (SELECT deviceid, build, \
        avg(metric_sum / n) AS device_avg FROM reports \
        WHERE measure = 'boot_time' GROUP BY deviceid, build) AS subq \
        GROUP BY build ORDER BY build");
  (* atomic cross-node cleansing of bad data (one of the §5 requirements):
     a distributed transaction with 2PC *)
  ignore (exec "BEGIN");
  ignore (exec "DELETE FROM measures WHERE build = 'build-3'");
  ignore (exec "DELETE FROM reports WHERE build = 'build-3'");
  ignore (exec "COMMIT");
  print_endline "\ncleansed build-3 atomically across all nodes";
  show
    (exec
       "SELECT build, count(*) FROM reports GROUP BY build ORDER BY build")
