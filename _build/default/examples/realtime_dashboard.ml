(* Real-time analytics (§2.2, Figure 2): ingest a JSON event stream with
   COPY, pre-aggregate it into a co-located rollup with INSERT..SELECT,
   and serve dashboard queries from both the raw events (trigram index)
   and the rollup.

     dune exec examples/realtime_dashboard.exe
*)

let () =
  let db = Workloads.Db.citus ~workers:4 ~shard_count:16 () in
  let exec sql = Workloads.Db.exec db sql in
  let show r =
    List.iter
      (fun row ->
        print_endline
          ("  " ^ String.concat " | "
                    (Array.to_list (Array.map Datum.to_display row))))
      r.Engine.Instance.rows
  in
  (* raw events table + expression GIN index, exactly as in §4.2 *)
  Workloads.Gharchive.setup_schema db;
  (* ingest a "day" of the stream through COPY: the coordinator routes
     rows to shards and the workers apply them in parallel *)
  let cfg =
    { Workloads.Gharchive.events = 2000; days = 5; commits_per_event = 3;
      postgres_fraction = 0.12 }
  in
  let loaded = Workloads.Gharchive.load db cfg in
  Printf.printf "ingested %d events via COPY\n" loaded;
  (* incremental pre-aggregation into a co-located rollup (Figure 2) *)
  Workloads.Gharchive.create_rollup_table db;
  let r = exec Workloads.Gharchive.transformation_query in
  Printf.printf "rolled up %d events with a co-located INSERT..SELECT\n\n"
    r.Engine.Instance.affected;
  (* dashboard panel 1: search the raw events through the trigram index *)
  print_endline "commits mentioning postgres, per day (GIN + pushdown):";
  show (exec Workloads.Gharchive.dashboard_query);
  (* dashboard panel 2: activity per day from the rollup *)
  print_endline "\nevents and commits per day (from the rollup):";
  show
    (exec
       "SELECT day, count(*), sum(n_commits) FROM commits GROUP BY day ORDER BY day");
  (* the stream keeps flowing: another batch lands and the rollup catches
     up incrementally — only the new rows move *)
  let more =
    Workloads.Gharchive.load db ~seed:99
      { cfg with Workloads.Gharchive.events = 500 }
  in
  let r2 =
    exec (Workloads.Gharchive.transformation_query ^ " ON CONFLICT DO NOTHING")
  in
  Printf.printf "\ningested %d more events; rollup caught up with %d new rows\n"
    more r2.Engine.Instance.affected
