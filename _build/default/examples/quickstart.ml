(* Quickstart: create a cluster, distribute a table, and watch the
   planner tiers at work.

     dune exec examples/quickstart.exe
*)

let () =
  (* a coordinator plus two workers, all in this process *)
  let cluster = Cluster.Topology.create ~workers:2 () in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  let s = Citus.Api.connect citus in
  let exec sql =
    Printf.printf "citus=# %s\n" sql;
    let r = Engine.Instance.exec s sql in
    List.iter
      (fun row ->
        print_endline
          ("  " ^ String.concat " | "
                    (Array.to_list (Array.map Datum.to_display row))))
      r.Engine.Instance.rows;
    if r.Engine.Instance.rows = [] then
      Printf.printf "  (%s %d)\n" r.Engine.Instance.tag r.Engine.Instance.affected;
    r
  in
  ignore (exec "CREATE TABLE events (device_id bigint, at bigint, payload text)");
  (* the Citus UDF converts it into 8 shards spread over the workers *)
  ignore (exec "SELECT create_distributed_table('events', 'device_id')");
  ignore
    (exec
       "INSERT INTO events (device_id, at, payload) VALUES (1, 10, 'boot'), \
        (2, 11, 'ping'), (1, 12, 'metric'), (3, 13, 'ping'), (2, 14, 'halt')");
  (* fast path: routed to one shard by the distribution column *)
  ignore (exec "SELECT count(*) FROM events WHERE device_id = 1");
  (* logical pushdown: parallel per-shard tasks + a coordinator merge *)
  ignore
    (exec
       "SELECT device_id, count(*) FROM events GROUP BY device_id ORDER BY device_id");
  (* show where the shards physically are *)
  print_endline "\nshard placements:";
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      Printf.printf "  %-16s [%11ld .. %11ld] on %s\n"
        (Citus.Metadata.shard_name sh)
        sh.Citus.Metadata.min_hash sh.Citus.Metadata.max_hash
        (Citus.Metadata.placement citus.Citus.Api.metadata sh.Citus.Metadata.shard_id))
    (Citus.Metadata.shards_of citus.Citus.Api.metadata "events");
  (* a cross-node transaction commits with 2PC under the hood *)
  ignore (exec "BEGIN");
  ignore (exec "UPDATE events SET payload = 'x' WHERE device_id = 1");
  ignore (exec "UPDATE events SET payload = 'y' WHERE device_id = 2");
  ignore (exec "COMMIT");
  print_endline "\ndistributed transaction committed (2PC if keys were on two nodes)"
