(* Distributed snapshot consistency overhead (DESIGN.md §4h): p50/p95 of
   scatter-gather reads at [eventual] vs [snapshot], each with and
   without one worker's clock skewed by seconds — same seed, same
   workload. The writes are two-key transfers whose COMMIT PREPARED
   fan-out is occasionally fumbled, so snapshot readers really do hit
   in-doubt windows and pay for resolving them; eventual readers skip
   the machinery (and may observe torn totals — counted, not asserted).
   The overhead is measured honestly, not asserted small. Writes
   BENCH_consistency.json. *)

let n_keys = 24
let n_rounds = 80
let fumble_every = 8
let skew_offset = 2.0
let skew_drift = 0.02
let seed = 11

type summary = {
  mode : string;
  skewed : bool;
  p50 : float;
  p95 : float;
  mean : float;
  indoubt_waits : int;
  read_retries : int;
  torn_reads : int;
}

(* nearest-rank percentile over a sorted array *)
let percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let run_mode ~consistency ~skewed () =
  let cluster =
    Cluster.Topology.create ~workers:3 ~fault_seed:seed ~sched_seed:seed ()
  in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  let st = Citus.Api.coordinator_state citus in
  let s = Citus.Api.connect citus in
  let exec sql = ignore (Engine.Instance.exec s sql) in
  exec "CREATE TABLE accounts (key bigint PRIMARY KEY, balance bigint)";
  exec "SELECT create_distributed_table('accounts', 'key')";
  for k = 0 to n_keys - 1 do
    exec (Printf.sprintf "INSERT INTO accounts (key, balance) VALUES (%d, 100)" k)
  done;
  let fault =
    match Cluster.Topology.fault cluster with
    | Some f -> f
    | None -> invalid_arg "consistency bench needs a fault plan"
  in
  Sim.Fault.set_latency fault ~mean:0.002 ~jitter:0.001;
  if skewed then begin
    let victim =
      (List.hd cluster.Cluster.Topology.workers).Cluster.Topology.node_name
    in
    Sim.Fault.schedule_skew fault ~at:0.0 ~offset:skew_offset ~drift:skew_drift
      victim
  end;
  st.Citus.State.config.Citus.State.consistency <- consistency;
  let clock = cluster.Cluster.Topology.clock in
  let rng = Random.State.make [| seed; 0xc0de |] in
  let torn = ref 0 in
  let expected = n_keys * 100 in
  let samples =
    Array.init n_rounds (fun i ->
        (* a cross-node transfer, sometimes with its commit fan-out to
           one worker fumbled — the in-doubt window a snapshot reader
           must resolve *)
        let k1 = Random.State.int rng n_keys in
        let k2 = (k1 + 1 + Random.State.int rng (n_keys - 1)) mod n_keys in
        let amount = 1 + Random.State.int rng 5 in
        let fumble = i mod fumble_every = fumble_every - 1 in
        if fumble then
          Citus.State.inject_failure st
            ~node:(Printf.sprintf "worker%d" (1 + Random.State.int rng 3))
            ~matching:"COMMIT PREPARED";
        (try
           exec "BEGIN";
           exec
             (Printf.sprintf
                "UPDATE accounts SET balance = balance - %d WHERE key = %d"
                amount k1);
           exec
             (Printf.sprintf
                "UPDATE accounts SET balance = balance + %d WHERE key = %d"
                amount k2);
           exec "COMMIT"
         with _ -> ( try exec "ROLLBACK" with _ -> ()));
        if fumble then Citus.State.clear_failures st;
        let t0 = Sim.Clock.now clock in
        (match
           (Engine.Instance.exec s "SELECT sum(balance) FROM accounts")
             .Engine.Instance.rows
         with
         | [ [| Datum.Int total |] ] when total <> expected -> incr torn
         | _ -> ());
        Sim.Clock.now clock -. t0)
  in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let mean =
    Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)
  in
  let counter name =
    Obs.Metrics.counter_value (Cluster.Topology.metrics cluster) name
  in
  {
    mode = Citus.State.consistency_to_string consistency;
    skewed;
    p50 = percentile sorted 0.50;
    p95 = percentile sorted 0.95;
    mean;
    indoubt_waits = counter Obs.Metric_names.snapshot_indoubt_waits;
    read_retries = counter Obs.Metric_names.snapshot_read_retries;
    torn_reads = !torn;
  }

let measure_modes () =
  List.concat_map
    (fun skewed ->
      List.map
        (fun consistency -> run_mode ~consistency ~skewed ())
        [ Citus.State.Eventual; Citus.State.Snapshot ])
    [ false; true ]

let json_out summaries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"consistency_overhead\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"reads_per_mode\": %d,\n" n_rounds);
  Buffer.add_string buf "  \"unit\": \"virtual seconds\",\n";
  Buffer.add_string buf "  \"modes\": [\n";
  let n = List.length summaries in
  List.iteri
    (fun i r ->
      let base =
        List.find
          (fun b -> b.mode = "eventual" && b.skewed = r.skewed)
          summaries
      in
      let pct =
        if base.p50 > 0.0 then (r.p50 -. base.p50) /. base.p50 *. 100.0
        else 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": %S, \"skewed\": %b, \"p50\": %.6f, \"p95\": %.6f, \
            \"mean\": %.6f, \"indoubt_waits\": %d, \"read_retries\": %d, \
            \"torn_reads\": %d, \"overhead_p50_pct\": %.1f}%s\n"
           r.mode r.skewed r.p50 r.p95 r.mean r.indoubt_waits r.read_retries
           r.torn_reads pct
           (if i = n - 1 then "" else ",")))
    summaries;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run () =
  Report.section
    "Consistency overhead: scatter-gather reads, eventual vs snapshot";
  let summaries = measure_modes () in
  Report.note "  %-10s %6s %12s %12s %12s %7s %8s %6s" "mode" "skew"
    "p50 (s)" "p95 (s)" "mean (s)" "waits" "retries" "torn";
  List.iter
    (fun r ->
      Report.note "  %-10s %6b %12.6f %12.6f %12.6f %7d %8d %6d" r.mode
        r.skewed r.p50 r.p95 r.mean r.indoubt_waits r.read_retries
        r.torn_reads)
    summaries;
  let json = json_out summaries in
  let oc = open_out "BENCH_consistency.json" in
  output_string oc json;
  close_out oc;
  Report.note "  wrote BENCH_consistency.json";
  summaries
