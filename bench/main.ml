(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4) against the OCaml reproduction.

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig6      # one experiment
     dune exec bench/main.exe -- micro     # Bechamel wall-clock microbenches

   The figures run real workloads against the real engines; elapsed time
   and throughput come from the deterministic resource model in Sim.Cost
   (see DESIGN.md for the testbed substitution). *)

let experiments =
  [
    ("tables", "Tables 1-3: workloads, capabilities, benchmarks", fun () -> Tables.run ());
    ("fig6", "Figure 6: TPC-C multi-tenant NOPM", fun () -> ignore (Fig6.run ()));
    ("fig7", "Figure 7: real-time analytics microbenchmarks", fun () -> ignore (Fig7.run ()));
    ("fig8", "Figure 8: TPC-H data warehousing", fun () -> ignore (Fig8.run ()));
    ("fig9", "Figure 9: distributed transaction overhead", fun () -> ignore (Fig9.run ()));
    ("fig10", "Figure 10: YCSB high-performance CRUD", fun () -> ignore (Fig10.run ()));
    ("ablation", "Ablations: columnar, delegation, slow start, join order", fun () -> Ablation.run ());
    ("obs", "Observability overhead: per-tier latency, tracing off vs on", fun () -> Obs_bench.run ());
    ("exec", "Adaptive executor: measured makespans on the virtual clock", fun () -> Exec_bench.run ());
    ("tail", "Tail latency under a brownout: hedging off vs on", fun () -> ignore (Tail.run ()));
    ("consistency", "Read consistency overhead: eventual vs snapshot, clock skew", fun () -> ignore (Consistency.run ()));
    ("prepared", "Prepared statements: plan-cache hit vs re-plan, cold vs warm", fun () -> ignore (Prepared.run ()));
    ("mx", "Citus MX: aggregate YCSB-A throughput, 1 vs N coordinators", fun () -> ignore (Mx.run ()));
    ("micro", "Bechamel wall-clock microbenchmarks", fun () -> Micro.run ());
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let to_run =
    match args with
    | [] ->
      List.filter (fun (n, _, _) -> n <> "micro" && n <> "ablation") experiments
    | names ->
      List.filter_map
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) experiments with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
            exit 1)
        names
  in
  Printf.printf
    "Citus (SIGMOD'21) reproduction benchmarks — shapes, not absolute numbers\n";
  List.iter
    (fun (_, _, f) ->
      let t0 = Unix.gettimeofday () in
      f ();
      Printf.printf "\n[experiment wall time: %.1fs]\n" (Unix.gettimeofday () -. t0))
    to_run
