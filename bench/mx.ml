(* Citus MX (DESIGN.md §4j): aggregate YCSB-A throughput with one
   coordinator vs every node coordinating.

   Same cluster, same workload, same seed; the only change is
   [citus_enable_metadata_sync]. In single-coordinator mode every
   session runs through the bootstrap coordinator, so its CPU carries
   all planning + fan-out work; in MX mode the catalog is replicated to
   every worker, each session connects to a different node, and the
   same per-transaction coordination cost spreads across N demand
   centers. The cluster is sized so the coordination bottleneck is
   real: a worker re-plans + executes its fragment, so per-node
   execution demand only drops below the lone coordinator's planning
   demand once enough workers share it (the paper's clusters are this
   shape — many workers behind one coordinator). MX then wins exactly
   the gap between the concentrated planning center and the spread
   per-worker centers.

   Writes BENCH_mx.json. *)

let cfg = { Workloads.Ycsb.rows = 12_000; fields = 10; field_length = 40 }

let buffer_pages = 220

let clients = 2048

let measured = 600

let workers = 12

let shard_count = 48 (* 4 per worker: placement skew would mask the shape *)

type summary = {
  mode : string;  (** "single" | "mx" *)
  coordinators : int;  (** nodes accepting sessions in this mode *)
  tps : float;
  response : float;
  bottleneck : string;
}

let run_mode ~mx () =
  let db = Workloads.Db.citus ~buffer_pages ~shard_count ~workers () in
  Workloads.Ycsb.setup db cfg;
  let api =
    match db.Workloads.Db.citus with
    | Some api -> api
    | None -> invalid_arg "mx bench needs a citus setup"
  in
  let sessions =
    if mx then begin
      (* replicate the catalog; every data node now plans + opens 2PC *)
      Citus.Api.enable_metadata_sync api;
      List.map
        (fun (n : Cluster.Topology.node) -> Citus.Api.connect_via api n)
        (Cluster.Topology.data_nodes db.Workloads.Db.cluster)
    end
    else [ db.Workloads.Db.session ]
  in
  let n_sessions = List.length sessions in
  let rng = Random.State.make [| 29 |] in
  (* warmup: populate the buffer pools to steady state *)
  for i = 1 to 400 do
    ignore (Workloads.Ycsb.run_one (List.nth sessions (i mod n_sessions)) cfg rng)
  done;
  let (), u =
    Harness.measure db (fun () ->
        for i = 1 to measured do
          ignore
            (Workloads.Ycsb.run_one (List.nth sessions (i mod n_sessions)) cfg
               rng)
        done)
  in
  let closed =
    Harness.closed_throughput db u ~n_txns:measured ~clients ~think_s:0.0
  in
  {
    mode = (if mx then "mx" else "single");
    coordinators = n_sessions;
    tps = closed.Harness.tps;
    response = closed.Harness.response;
    bottleneck = closed.Harness.bottleneck;
  }

(* Both modes, same seed — what test_bench guards. *)
let measure_modes () = [ run_mode ~mx:false (); run_mode ~mx:true () ]

let run () =
  Report.section
    "Citus MX: YCSB workload A, one coordinator vs every node coordinating";
  let summaries = measure_modes () in
  let baseline =
    match summaries with s :: _ -> s.tps | [] -> 1.0
  in
  Report.table
    ~title:
      (Printf.sprintf "YCSB workload A (uniform, %d threads, %d workers)"
         clients workers)
    ~headers:
      [ "mode"; "coordinators"; "ops/s"; "vs single"; "response"; "bottleneck" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.mode;
             string_of_int r.coordinators;
             Report.fmt_rate r.tps;
             Report.fmt_x (r.tps /. baseline);
             Report.fmt_ms r.response;
             r.bottleneck;
           ])
         summaries);
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"bench\": \"mx\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": \"ycsb_a\", \"txns\": %d, \"clients\": %d, \
        \"workers\": %d,\n"
       measured clients workers);
  Buffer.add_string buf "  \"modes\": [\n";
  let n = List.length summaries in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": %S, \"coordinators\": %d, \"tps\": %.2f, \
            \"response_s\": %.6f, \"bottleneck\": %S}%s\n"
           r.mode r.coordinators r.tps r.response r.bottleneck
           (if i = n - 1 then "" else ",")))
    summaries;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_mx.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.note "  wrote BENCH_mx.json";
  summaries
