(* Observability overhead benchmark.

   Measures real wall-clock per-statement latency of this implementation
   for each planner tier, with the trace sink disabled and enabled, and
   writes the percentiles to BENCH_obs.json. The interesting number is
   the relative overhead column: the disabled sink is supposed to be
   near-free (a single branch per would-be span), so "off" and "on minus
   span cost" should be close. Absolute numbers are this OCaml model's
   speed, not PostgreSQL's. *)

let samples = 300
let warmup = 20

let percentile sorted p =
  let n = Array.length sorted in
  let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) idx))

let setup () =
  let db = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  ignore
    (Workloads.Db.exec db
       "CREATE TABLE items (key bigint PRIMARY KEY, val text, qty bigint)");
  ignore (Workloads.Db.exec db "CREATE TABLE dims (id bigint, name text)");
  (match db.Workloads.Db.citus with
   | Some api ->
     Citus.Api.create_distributed_table api ~table:"items" ~column:"key" ()
   | None -> ());
  ignore (Workloads.Db.exec db "SELECT create_reference_table('dims')");
  for i = 1 to 200 do
    ignore
      (Workloads.Db.exec db
         (Printf.sprintf "INSERT INTO items (key, val, qty) VALUES (%d, 'v', %d)"
            i (i mod 5)))
  done;
  for d = 0 to 4 do
    ignore
      (Workloads.Db.exec db
         (Printf.sprintf "INSERT INTO dims (id, name) VALUES (%d, 'd%d')" d d))
  done;
  db

(* One statement per planner tier; keyed statements rotate to avoid
   measuring a hot row. *)
let tiers =
  [
    ( "fast_path",
      fun i -> Printf.sprintf "SELECT * FROM items WHERE key = %d" (1 + (i mod 200)) );
    ( "router",
      fun i ->
        Printf.sprintf
          "SELECT items.val, dims.name FROM items JOIN dims ON items.qty = \
           dims.id WHERE items.key = %d"
          (1 + (i mod 200)) );
    ("pushdown", fun _ -> "SELECT qty, count(*) FROM items GROUP BY qty");
    ("dml", fun _ -> "UPDATE items SET qty = qty + 1 WHERE qty >= 0");
  ]

let run_mode ~tracing =
  let db = setup () in
  let trace =
    match db.Workloads.Db.citus with
    | Some api ->
      let st = Citus.Api.coordinator_state api in
      Cluster.Topology.trace st.Citus.State.cluster
    | None -> invalid_arg "obs bench needs a citus cluster"
  in
  Obs.Trace.set_enabled trace tracing;
  List.map
    (fun (tier, stmt) ->
      for i = 1 to warmup do
        ignore (Workloads.Db.exec db (stmt i))
      done;
      let lat =
        Array.init samples (fun i ->
            (* keep the retained span list short so we measure the span
               machinery, not an ever-growing buffer *)
            if tracing && i mod 50 = 0 then Obs.Trace.reset trace;
            let t0 = Unix.gettimeofday () in
            ignore (Workloads.Db.exec db (stmt (warmup + i)));
            (Unix.gettimeofday () -. t0) *. 1e6)
      in
      Array.sort Float.compare lat;
      (tier, percentile lat 50.0, percentile lat 95.0))
    tiers

let json_out off on =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"obs_overhead\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"samples_per_tier\": %d,\n" samples);
  Buffer.add_string buf "  \"unit\": \"microseconds\",\n";
  Buffer.add_string buf "  \"tiers\": [\n";
  let n = List.length off in
  List.iteri
    (fun i ((tier, off50, off95), (_, on50, on95)) ->
      let pct =
        if off50 > 0.0 then (on50 -. off50) /. off50 *. 100.0 else 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"tier\": %S, \"off\": {\"p50\": %.2f, \"p95\": %.2f}, \
            \"on\": {\"p50\": %.2f, \"p95\": %.2f}, \"overhead_p50_pct\": \
            %.1f}%s\n"
           tier off50 off95 on50 on95 pct
           (if i = n - 1 then "" else ",")))
    (List.combine off on);
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run () =
  Report.section "Observability overhead: per-tier latency, tracing off vs on";
  let off = run_mode ~tracing:false in
  let on = run_mode ~tracing:true in
  Report.note "  %-10s %14s %14s %14s %14s %10s" "tier" "off p50 (us)"
    "off p95 (us)" "on p50 (us)" "on p95 (us)" "p50 ovh%";
  List.iter2
    (fun (tier, off50, off95) (_, on50, on95) ->
      let pct =
        if off50 > 0.0 then (on50 -. off50) /. off50 *. 100.0 else 0.0
      in
      Report.note "  %-10s %14.1f %14.1f %14.1f %14.1f %9.1f%%" tier off50
        off95 on50 on95 pct)
    off on;
  let json = json_out off on in
  let oc = open_out "BENCH_obs.json" in
  output_string oc json;
  close_out oc;
  Report.note "  wrote BENCH_obs.json"
