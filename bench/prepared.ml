(* Prepared statements and the distributed plan cache (DESIGN.md §4i):
   per-EXECUTE cost on the coordinator, cached vs uncached
   ([citus.plan_cache_size] 0), cold vs warm, for both cacheable tiers
   (fast path and router).

   Two quantities per mode:

   - the {e coordinator cost} per EXECUTE — the meter's CPU demand on
     the coordinator converted to seconds. This is what the plan cache
     optimizes (a warm hit binds + hashes instead of re-planning), and
     what the shape guard in test_bench holds to >= 2x.
   - the {e end-to-end} virtual latency (clock delta + coordinator
     CPU), for context: it includes the worker's modeled execution
     time, which is identical in both modes by design.

   Writes BENCH_prepared.json. *)

let n_keys = 32
let n_execs = 160
let seed = 11

type summary = {
  mode : string;  (** "cached" | "uncached" *)
  tier : string;  (** "fast_path" | "router" *)
  cold : float;  (** first EXECUTE: cache build (cached) or re-plan *)
  p50 : float;  (** warm coordinator cost per EXECUTE *)
  p95 : float;
  mean : float;
  e2e_p50 : float;  (** warm end-to-end virtual latency *)
  e2e_p95 : float;
}

(* nearest-rank percentile over a sorted array *)
let percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

(* one shape per cacheable tier: a single-table point read (fast path)
   and a co-located two-table join pinned to one shard group (router) *)
let shapes =
  [
    ("fast_path", "getv", "SELECT val FROM items WHERE key = $1");
    ( "router",
      "getj",
      "SELECT items.val FROM items JOIN orders ON items.key = orders.key \
       WHERE items.key = $1 AND orders.key = $1" );
  ]

let run_mode ~mode ~cache_size ~tier ~name ~sql () =
  let cluster =
    Cluster.Topology.create ~workers:3 ~fault_seed:seed ~sched_seed:seed ()
  in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  let s = Citus.Api.connect citus in
  let exec sql = ignore (Engine.Instance.exec s sql) in
  exec "CREATE TABLE items (key bigint PRIMARY KEY, val text)";
  exec "SELECT create_distributed_table('items', 'key')";
  exec "CREATE TABLE orders (key bigint PRIMARY KEY, amount bigint)";
  exec "SELECT create_distributed_table('orders', 'key', 'items')";
  for k = 0 to n_keys - 1 do
    exec (Printf.sprintf "INSERT INTO items (key, val) VALUES (%d, 'v%d')" k k);
    exec
      (Printf.sprintf "INSERT INTO orders (key, amount) VALUES (%d, %d)" k
         (k * 10))
  done;
  exec
    (Printf.sprintf "SELECT citus_set_config('plan_cache_size', '%d')"
       cache_size);
  Citus.Session.prepare s ~name sql;
  let st = Citus.Api.coordinator_state citus in
  let node = st.Citus.State.local in
  let meter = Engine.Instance.meter node.Cluster.Topology.instance in
  let clock = cluster.Cluster.Topology.clock in
  (* one EXECUTE: (coordinator CPU seconds, end-to-end virtual seconds) *)
  let one k =
    let m0 = Engine.Meter.read meter in
    let t0 = Sim.Clock.now clock in
    ignore (Citus.Session.execute s name [ Datum.Int k ]);
    let cpu =
      Engine.Meter.total_cpu_units
        (Engine.Meter.diff ~after:(Engine.Meter.read meter) ~before:m0)
      *. node.Cluster.Topology.spec.Sim.Cost.cpu_unit
    in
    (cpu, Sim.Clock.now clock -. t0 +. cpu)
  in
  let cold, _ = one 0 in
  let samples = Array.init n_execs (fun i -> one (i mod n_keys)) in
  let coord = Array.map fst samples and e2e = Array.map snd samples in
  Array.sort compare coord;
  Array.sort compare e2e;
  let mean =
    Array.fold_left ( +. ) 0.0 coord /. float_of_int (Array.length coord)
  in
  {
    mode;
    tier;
    cold;
    p50 = percentile coord 0.50;
    p95 = percentile coord 0.95;
    mean;
    e2e_p50 = percentile e2e 0.50;
    e2e_p95 = percentile e2e 0.95;
  }

(* The full matrix, same seed everywhere — what test_bench guards. *)
let measure_modes () =
  List.concat_map
    (fun (tier, name, sql) ->
      [
        run_mode ~mode:"cached" ~cache_size:128 ~tier ~name ~sql ();
        run_mode ~mode:"uncached" ~cache_size:0 ~tier ~name ~sql ();
      ])
    shapes

let fmt_us s = Printf.sprintf "%.0fus" (s *. 1e6)

let run () =
  Report.section
    "Prepared statements: per-EXECUTE coordinator cost, plan cache on vs off";
  let summaries = measure_modes () in
  Report.table
    ~title:
      (Printf.sprintf
         "%d warm EXECUTEs per mode over %d keys (cold = first EXECUTE)"
         n_execs n_keys)
    ~headers:
      [ "tier"; "mode"; "cold"; "p50"; "p95"; "mean"; "e2e p50"; "e2e p95" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.tier;
             r.mode;
             fmt_us r.cold;
             fmt_us r.p50;
             fmt_us r.p95;
             fmt_us r.mean;
             fmt_us r.e2e_p50;
             fmt_us r.e2e_p95;
           ])
         summaries);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"prepared_statements\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"execs\": %d, \"keys\": %d, \"plan_cache_size\": 128,\n"
       n_execs n_keys);
  Buffer.add_string buf "  \"modes\": [\n";
  let n = List.length summaries in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"tier\": %S, \"mode\": %S, \"cold_s\": %.6f, \"p50_s\": \
            %.6f, \"p95_s\": %.6f, \"mean_s\": %.6f, \"e2e_p50_s\": %.6f, \
            \"e2e_p95_s\": %.6f}%s\n"
           r.tier r.mode r.cold r.p50 r.p95 r.mean r.e2e_p50 r.e2e_p95
           (if i = n - 1 then "" else ",")))
    summaries;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_prepared.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.note "  wrote BENCH_prepared.json";
  summaries
