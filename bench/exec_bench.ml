(* Adaptive-executor makespan benchmark on the virtual clock.

   Every number here is measured, not simulated: the executor dispatches
   fragments as scheduler fibers, connections open on the slow-start ramp
   of the virtual clock, and [report.makespan] is the clock elapsed over
   the whole statement. "Serial" is the executor's own serial floor (the
   sum of fragment durations — what one connection per node would pay),
   so the speedup column is concurrency the scheduler actually delivered.
   Writes BENCH_exec.json. *)

(* A citus cluster with one distributed table [t] holding [rows] rows,
   loaded through the normal SQL path. *)
let setup ~workers ~shard_count ~rows () =
  let cluster = Cluster.Topology.create ~workers () in
  let citus = Citus.Api.install ~shard_count cluster in
  let s = Citus.Api.connect citus in
  let exec sql = ignore (Engine.Instance.exec s sql) in
  exec "CREATE TABLE t (k bigint, v bigint)";
  exec "SELECT create_distributed_table('t', 'k')";
  exec "BEGIN";
  for i = 1 to rows do
    exec (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, %d)" i i)
  done;
  exec "COMMIT";
  (citus, Citus.Api.coordinator_state citus)

let shard_task citus (shard : Citus.Metadata.shard) sql =
  {
    Citus.Plan.task_node =
      Citus.Metadata.placement citus.Citus.Api.metadata
        shard.Citus.Metadata.shard_id;
    task_stmt = (Sqlfront.Parser.parse_statement sql [@lint.sql_static]);
    task_group = shard.Citus.Metadata.index_in_colocation;
    task_shard = shard.Citus.Metadata.shard_id;
  }

(* Scatter-gather: [per_shard] read fragments against every shard, like a
   multi-shard aggregate fanning out across the cluster. *)
let scatter_tasks citus ~per_shard =
  Citus.Metadata.shards_of citus.Citus.Api.metadata "t"
  |> List.concat_map (fun shard ->
         List.init per_shard (fun _ ->
             shard_task citus shard
               (Printf.sprintf "SELECT count(*) FROM %s"
                  (Citus.Metadata.shard_name shard))))

(* Multi-row INSERT: [n] single-row writes round-robined over the shards.
   Writes to the same shard group share a transaction-affine connection,
   so they chain serially per shard and parallelise across shards. *)
let insert_tasks citus n =
  let shards = Citus.Metadata.shards_of citus.Citus.Api.metadata "t" in
  let arr = Array.of_list shards in
  List.init n (fun i ->
      let shard = arr.(i mod Array.length arr) in
      shard_task citus shard
        (Printf.sprintf "INSERT INTO %s (k, v) VALUES (%d, %d)"
           (Citus.Metadata.shard_name shard)
           (1_000_000 + i) i))

(* [n] identical reads of one shard: every task competes for connections
   to a single node — the slow-start ramp's worst case (used by the
   ablation and its shape test). *)
let same_shard_tasks citus n =
  match Citus.Metadata.shards_of citus.Citus.Api.metadata "t" with
  | [] -> invalid_arg "no shards"
  | shard :: _ ->
    List.init n (fun _ ->
        shard_task citus shard
          (Printf.sprintf "SELECT count(*) FROM %s"
             (Citus.Metadata.shard_name shard)))

(* Run [tasks] through the real executor on a fresh session (empty pools,
   so the connection ramp starts from zero). *)
let measure ?(slow_start = 0.010) (citus, st) tasks =
  st.Citus.State.config.Citus.State.slow_start_interval <- slow_start;
  let session = Citus.Api.connect citus in
  let _, report = Citus.Adaptive_executor.execute st session tasks in
  report

let total_conns (r : Citus.Adaptive_executor.report) =
  List.fold_left (fun acc (_, c) -> acc + c) 0
    r.Citus.Adaptive_executor.connections_used

(* Connection-open times as offsets from the first open, per node: the
   visible shape of the slow-start ramp. *)
let ramp_offsets (r : Citus.Adaptive_executor.report) =
  let opens = r.Citus.Adaptive_executor.conn_opened_at in
  let t0 =
    List.fold_left
      (fun acc (_, ts) -> List.fold_left Float.min acc ts)
      infinity opens
  in
  List.map (fun (node, ts) -> (node, List.map (fun t -> t -. t0) ts)) opens

let json_workload buf ~last name (r : Citus.Adaptive_executor.report) =
  let speedup =
    if r.Citus.Adaptive_executor.makespan > 0.0 then
      r.Citus.Adaptive_executor.serial_time
      /. r.Citus.Adaptive_executor.makespan
    else 1.0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"workload\": %S, \"serial_s\": %.6f, \"makespan_s\": %.6f, \
        \"speedup\": %.2f, \"connections\": [\n"
       name
       r.Citus.Adaptive_executor.serial_time
       r.Citus.Adaptive_executor.makespan speedup);
  let ramp = ramp_offsets r in
  let n = List.length r.Citus.Adaptive_executor.connections_used in
  List.iteri
    (fun i (node, c) ->
      let offsets =
        match List.assoc_opt node ramp with Some ts -> ts | None -> []
      in
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"node\": %S, \"opened\": %d, \"opened_at_offset_s\": [%s]}%s\n"
           node c
           (String.concat ", " (List.map (Printf.sprintf "%.6f") offsets))
           (if i = n - 1 then "" else ",")))
    r.Citus.Adaptive_executor.connections_used;
  Buffer.add_string buf
    (Printf.sprintf "    ]}%s\n" (if last then "" else ","))

let run () =
  Report.section
    "Adaptive executor: measured makespans (scheduler, virtual clock)";
  let fixture = setup ~workers:4 ~shard_count:16 ~rows:4000 () in
  let workloads =
    [
      ("scatter-gather (32 fragments, 4 nodes)",
       measure fixture (scatter_tasks (fst fixture) ~per_shard:2));
      ("multi-row INSERT (64 rows, 16 shards)",
       measure fixture (insert_tasks (fst fixture) 64));
      ("single-node hot shard (16 reads)",
       measure fixture (same_shard_tasks (fst fixture) 16));
    ]
  in
  Report.table
    ~title:"serial floor vs measured makespan (10ms slow start)"
    ~headers:[ "workload"; "serial"; "makespan"; "speedup"; "conns" ]
    ~rows:
      (List.map
         (fun (name, (r : Citus.Adaptive_executor.report)) ->
           [
             name;
             Report.fmt_s r.Citus.Adaptive_executor.serial_time;
             Report.fmt_s r.Citus.Adaptive_executor.makespan;
             Report.fmt_x
               (r.Citus.Adaptive_executor.serial_time
               /. Float.max 1e-9 r.Citus.Adaptive_executor.makespan);
             string_of_int (total_conns r);
           ])
         workloads);
  (match workloads with
   | (_, r) :: _ ->
     Report.note "slow-start ramp (connection-open offsets per node):";
     List.iter
       (fun (node, ts) ->
         Report.note "  %-10s %s" node
           (String.concat " "
              (List.map (fun t -> Printf.sprintf "+%.1fms" (t *. 1000.)) ts)))
       (ramp_offsets r)
   | [] -> ());
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"exec_makespan\",\n";
  Buffer.add_string buf "  \"slow_start_interval_s\": 0.010,\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  let n = List.length workloads in
  List.iteri
    (fun i (name, r) -> json_workload buf ~last:(i = n - 1) name r)
    workloads;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_exec.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.note "  wrote BENCH_exec.json"
