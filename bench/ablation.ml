(* Ablations for the design choices DESIGN.md calls out:

   1. columnar vs row storage for scan-heavy analytics (Table 2's DW
      capability);
   2. stored-procedure delegation on/off for TPC-C (§3.8: avoids
      per-statement round trips between coordinator and workers);
   3. slow-start on/off in the adaptive executor (§3.6.1: connection cost
      vs parallelism);
   4. the join-order planner's broadcast threshold (re-partition vs
      broadcast decision, §3.5). *)

(* --- 1. columnar vs row --- *)

let columnar_vs_row () =
  Report.section "Ablation 1: columnar vs row storage (scan-heavy aggregate)";
  let db = Workloads.Db.postgres ~buffer_pages:300 () in
  let s = db.Workloads.Db.session in
  ignore
    (Workloads.Db.exec db
       "CREATE TABLE lineitem_row (k bigint, qty bigint, price double precision, \
        discount double precision, flag text, comment text)");
  ignore
    (Workloads.Db.exec db
       "CREATE TABLE lineitem_col (k bigint, qty bigint, price double precision, \
        discount double precision, flag text, comment text) USING COLUMNAR");
  let rng = Random.State.make [| 3 |] in
  let lines =
    List.init 20000 (fun i ->
        Printf.sprintf "%d\t%d\t%f\t%f\t%s\tpadding-padding-padding-%d" i
          (1 + Random.State.int rng 50)
          (Random.State.float rng 1000.0)
          (Random.State.float rng 0.1)
          (if i mod 4 = 0 then "R" else "N")
          i)
  in
  let rec batches table = function
    | [] -> ()
    | l ->
      let b = List.filteri (fun i _ -> i < 500) l in
      let rest = List.filteri (fun i _ -> i >= 500) l in
      ignore (Engine.Instance.copy_in s ~table ~columns:None b);
      batches table rest
  in
  batches "lineitem_row" lines;
  batches "lineitem_col" lines;
  let q table =
    Printf.sprintf
      "SELECT sum(price * (1 - discount)), sum(qty) FROM %s WHERE qty < 25"
      table
  in
  let measure table =
    (* cold cache each time: what a big scan looks like *)
    Storage.Buffer_pool.clear
      (Engine.Instance.buffer_pool (Engine.Instance.session_instance s));
    let _, u = Harness.measure db (fun () -> Workloads.Db.exec db (q table)) in
    let d = List.assoc "coordinator" u.Harness.per_node in
    (d.Sim.Cost.cpu_s +. d.Sim.Cost.io_s, d.Sim.Cost.io_s)
  in
  let row_total, row_io = measure "lineitem_row" in
  let col_total, col_io = measure "lineitem_col" in
  Report.table ~title:"cold 2-column aggregate over 6-column rows (20k)"
    ~headers:[ "storage"; "elapsed"; "of which I/O"; "speedup" ]
    ~rows:
      [
        [ "row (heap)"; Report.fmt_s row_total; Report.fmt_s row_io; "1.0x" ];
        [
          "columnar";
          Report.fmt_s col_total;
          Report.fmt_s col_io;
          Report.fmt_x (row_total /. col_total);
        ];
      ];
  Report.note
    "columnar reads only the projected column stripes; the row scan pays for \
     every page."

(* --- 2. procedure delegation on/off --- *)

let delegation () =
  Report.section "Ablation 2: stored-procedure delegation (TPC-C, §3.8)";
  let cfg =
    {
      Workloads.Tpcc.warehouses = 16;
      districts_per_warehouse = 2;
      customers_per_district = 10;
      items = 100;
      remote_txn_fraction = 0.05;
    }
  in
  let run ~delegated =
    let db = Workloads.Db.citus ~workers:4 ~shard_count:16 () in
    Workloads.Tpcc.setup db cfg;
    if delegated then Workloads.Tpcc.enable_delegation db
    else
      (* metadata sync without registering the distributed functions:
         calls run on the coordinator and every statement hops *)
      (match db.Workloads.Db.citus with
       | Some api -> Citus.Api.enable_metadata_sync api
       | None -> ());
    let rng = Random.State.make [| 42 |] in
    let n = 200 in
    let (), u =
      Harness.measure db (fun () ->
          for _ = 1 to n do
            ignore (Workloads.Tpcc.run_one db db.Workloads.Db.session cfg rng)
          done)
    in
    float_of_int u.Harness.cross_rts /. float_of_int n
  in
  let without = run ~delegated:false in
  let with_ = run ~delegated:true in
  Report.table ~title:"cross-node round trips per transaction"
    ~headers:[ "mode"; "round trips/txn" ]
    ~rows:
      [
        [ "coordinator executes procedure"; Printf.sprintf "%.1f" without ];
        [ "delegated to warehouse node"; Printf.sprintf "%.1f" with_ ];
      ];
  Report.note
    "delegation sends one CALL to the data and keeps its ~15 statements \
     local (%.1fx fewer round trips)."
    (without /. Float.max 0.1 with_)

(* --- 3. slow start on/off --- *)

let slow_start () =
  Report.section "Ablation 3: adaptive-executor slow start (§3.6.1)";
  (* the real executor on the virtual clock: 16 reads of one shard, so
     every fragment competes for connections to a single node; shard size
     sets the fragment cost relative to the 10ms ramp interval *)
  let scenario name ~rows =
    let fixture = Exec_bench.setup ~workers:2 ~shard_count:8 ~rows () in
    let tasks = Exec_bench.same_shard_tasks (fst fixture) 16 in
    let ramped = Exec_bench.measure ~slow_start:0.010 fixture tasks in
    let eager = Exec_bench.measure ~slow_start:0.0 fixture tasks in
    [
      name;
      Report.fmt_s ramped.Citus.Adaptive_executor.makespan;
      string_of_int (Exec_bench.total_conns ramped);
      Report.fmt_s eager.Citus.Adaptive_executor.makespan;
      string_of_int (Exec_bench.total_conns eager);
    ]
  in
  Report.table
    ~title:"measured makespan and connections opened, slow start vs eager"
    ~headers:
      [ "workload"; "slow-start time"; "conns"; "eager time"; "conns" ]
    ~rows:
      [
        scenario "16 reads, near-empty shard" ~rows:16;
        scenario "16 reads, 2k-row shards" ~rows:2000;
        scenario "16 reads, 20k-row shards" ~rows:20000;
      ];
  Report.note
    "fast statements finish on one connection before the ramp opens more \
     (no setup waste); long tasks still reach full parallelism — each \
     avoided connection saves ~%.0fms of establishment cost under load."
    (Sim.Cost.connection_setup_cost *. 1000.0)

(* --- 4. broadcast threshold sweep --- *)

let join_order_threshold () =
  Report.section
    "Ablation 4: join-order planner, re-partition vs broadcast (§3.5)";
  let rows_list = [ 50; 500; 5000 ] in
  let rows_out =
    List.map
      (fun inner_rows ->
        let cluster = Cluster.Topology.create ~workers:4 () in
        let citus = Citus.Api.install ~shard_count:16 cluster in
        let s = Citus.Api.connect citus in
        let exec sql = ignore (Engine.Instance.exec s sql) in
        exec "CREATE TABLE facts (k bigint, cat bigint)";
        exec "SELECT create_distributed_table('facts', 'k')";
        exec "CREATE TABLE dims (id bigint, cat bigint, label text)";
        exec "SELECT create_distributed_table('dims', 'id')";
        ignore (Engine.Instance.exec s "BEGIN");
        for i = 1 to 2000 do
          exec (Printf.sprintf "INSERT INTO facts (k, cat) VALUES (%d, %d)" i (i mod 97))
        done;
        for i = 1 to inner_rows do
          exec
            (Printf.sprintf "INSERT INTO dims (id, cat, label) VALUES (%d, %d, 'l')"
               i (i mod 97))
        done;
        ignore (Engine.Instance.exec s "COMMIT");
        let st = Citus.Api.coordinator_state citus in
        let sel =
          Sqlfront.Parser.parse_select
            "SELECT count(*) FROM facts JOIN dims ON facts.cat = dims.cat"
        in
        let net0 = Cluster.Topology.net_snapshot cluster in
        let _result, decision, _ = Citus.Join_order.execute st s sel in
        let net1 = Cluster.Topology.net_snapshot cluster in
        let shipped =
          (Cluster.Topology.net_diff ~after:net1 ~before:net0)
            .Cluster.Topology.rows_shipped
        in
        let choice =
          match decision.Citus.Join_order.moves with
          | [ Citus.Join_order.Broadcast _ ] -> "broadcast"
          | [ Citus.Join_order.Repartition _ ] -> "re-partition"
          | _ -> "mixed"
        in
        [
          string_of_int inner_rows;
          decision.Citus.Join_order.anchor;
          choice;
          string_of_int shipped;
        ])
      rows_list
  in
  Report.table ~title:"join on a non-distribution column: planner decision"
    ~headers:[ "inner rows"; "anchor"; "strategy"; "rows shipped" ]
    ~rows:rows_out;
  Report.note
    "small inner relations are broadcast; past the threshold the planner \
     anchors on the big table only if a re-partition key exists (here it \
     does not, so the anchor flips instead)."

let run () =
  columnar_vs_row ();
  delegation ();
  slow_start ();
  join_order_threshold ()
