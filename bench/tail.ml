(* Tail latency under a gray failure: p50/p95/p99 of single-shard reads
   while one replica of every shard browns out (replies land late, the
   node never dies), hedging off vs on — same seed, same workload, same
   stall. The tail collapses from the stall's extra latency to roughly
   the hedge threshold; the median, served by healthy replicas either
   way, barely moves. Writes BENCH_tail.json. *)

let n_keys = 32
let n_reads = 200
let stall_extra = 0.25
let hedge_on = 0.02
let seed = 7

type summary = {
  mode : string;
  p50 : float;
  p95 : float;
  p99 : float;
  max_ : float;
  mean : float;
  hedged : int;
}

(* nearest-rank percentile over a sorted array *)
let percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let run_mode ~mode ~hedge_threshold () =
  let cluster =
    Cluster.Topology.create ~workers:3 ~fault_seed:seed ~sched_seed:seed ()
  in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  Citus.Api.set_replication_factor citus 2;
  let st = Citus.Api.coordinator_state citus in
  st.Citus.State.config.Citus.State.hedge_threshold <- hedge_threshold;
  let s = Citus.Api.connect citus in
  let exec sql = ignore (Engine.Instance.exec s sql) in
  exec "CREATE TABLE accounts (key bigint PRIMARY KEY, balance bigint)";
  exec "SELECT create_distributed_table('accounts', 'key')";
  for k = 0 to n_keys - 1 do
    exec (Printf.sprintf "INSERT INTO accounts (key, balance) VALUES (%d, 100)" k)
  done;
  let fault =
    match Cluster.Topology.fault cluster with
    | Some f -> f
    | None -> invalid_arg "cluster has no fault plan"
  in
  (* ambient link latency plus one permanently browned-out worker: every
     shard keeps a healthy replica (replication 2 over 3 workers) *)
  Sim.Fault.set_latency fault ~mean:0.002 ~jitter:0.001;
  let victim =
    (List.hd cluster.Cluster.Topology.workers).Cluster.Topology.node_name
  in
  Sim.Fault.stall_node fault ~node:victim ~extra:stall_extra ~duration:1e9;
  let clock = cluster.Cluster.Topology.clock in
  let samples =
    Array.init n_reads (fun i ->
        let k = i mod n_keys in
        let t0 = Sim.Clock.now clock in
        exec (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k);
        Sim.Clock.now clock -. t0)
  in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let mean =
    Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)
  in
  {
    mode;
    p50 = percentile sorted 0.50;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
    max_ = sorted.(Array.length sorted - 1);
    mean;
    hedged =
      Obs.Metrics.counter_value
        (Cluster.Topology.metrics cluster)
        "exec.hedged_reads";
  }

(* Both modes, same seed — the comparison test_bench guards. *)
let measure_modes () =
  [
    run_mode ~mode:"hedging off" ~hedge_threshold:0.0 ();
    run_mode ~mode:"hedging on" ~hedge_threshold:hedge_on ();
  ]

let run () =
  Report.section
    "Tail latency: single-shard reads under a single-replica brownout";
  let summaries = measure_modes () in
  Report.table
    ~title:
      (Printf.sprintf
         "%d reads, one replica +%.0fms per round trip (hedge threshold %.0fms)"
         n_reads (stall_extra *. 1000.) (hedge_on *. 1000.))
    ~headers:[ "mode"; "p50"; "p95"; "p99"; "max"; "mean"; "hedged" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.mode;
             Report.fmt_ms r.p50;
             Report.fmt_ms r.p95;
             Report.fmt_ms r.p99;
             Report.fmt_ms r.max_;
             Report.fmt_ms r.mean;
             string_of_int r.hedged;
           ])
         summaries);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"tail_latency\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"reads\": %d, \"stall_extra_s\": %.3f, \"hedge_threshold_s\": %.3f,\n"
       n_reads stall_extra hedge_on);
  Buffer.add_string buf "  \"modes\": [\n";
  let n = List.length summaries in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"mode\": %S, \"p50_s\": %.6f, \"p95_s\": %.6f, \"p99_s\": \
            %.6f, \"max_s\": %.6f, \"mean_s\": %.6f, \"hedged_reads\": %d}%s\n"
           r.mode r.p50 r.p95 r.p99 r.max_ r.mean r.hedged
           (if i = n - 1 then "" else ",")))
    summaries;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_tail.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.note "  wrote BENCH_tail.json";
  summaries
