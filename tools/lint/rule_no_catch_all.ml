(** L5 no-catch-all: in the 2PC / health / deadlock paths, a
    [try ... with _ -> ...] that neither re-raises nor records the failure
    erases exactly the evidence recovery needs. A swallowed
    [ROLLBACK PREPARED] failure leaves an orphaned prepared transaction
    holding locks with no counter ticking anywhere; monitoring sees a
    healthy cluster. Catch-alls must re-raise or feed a recorder such as
    Health.record_ignored or a log function. *)

let id = "L5"
let name = "no-catch-all"

let doc =
  "catch-all exception handlers in 2PC/health/deadlock paths must re-raise \
   or record (Health.record_*, log*) what they swallow"

(* The reliability-critical files: the 2PC protocol itself, the failover
   executor that withdraws broken connections from it, the circuit
   breakers, and the deadlock detector. *)
let applies path =
  List.mem (Filename.basename path)
    [ "twopc.ml"; "adaptive_executor.ml"; "health.ml"; "deadlock.ml" ]

let is_catch_all (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias ({ ppat_desc = Parsetree.Ppat_any; _ }, _) -> true
  | _ -> false

(* Does the handler body re-raise or call something that records? *)
let handles (rhs : Parsetree.expression) =
  Rule.expr_exists
    (fun e ->
      match List.rev (Rule.ident_path e) with
      | ("raise" | "raise_notrace") :: _ -> true
      | last :: _ when Rule.starts_with "record_" last -> true
      | last :: _ when Rule.starts_with "log" last -> true
      | _ -> false)
    rhs

(* A handler case that swallows: catch-all pattern (either a [try] handler
   or a [match]'s [exception _] case), no guard, body neither re-raises nor
   records. *)
let swallowing_case (c : Parsetree.case) =
  let pat =
    match c.Parsetree.pc_lhs.ppat_desc with
    | Parsetree.Ppat_exception p -> Some p (* match ... with exception _ *)
    | _ -> Some c.pc_lhs
  in
  match pat with
  | Some p -> is_catch_all p && c.pc_guard = None && not (handles c.pc_rhs)
  | None -> false

let check ~path (str : Parsetree.structure) =
  let findings = ref [] in
  let super = Ast_iterator.default_iterator in
  let report (c : Parsetree.case) =
    findings :=
      Rule.finding ~id ~file:path ~loc:c.pc_lhs.ppat_loc
        "catch-all handler swallows the exception; re-raise it or record it \
         (e.g. Health.record_ignored) so recovery and monitoring can see \
         the failure"
      :: !findings
  in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_try (_, handlers) ->
       List.iter
         (fun (c : Parsetree.case) -> if swallowing_case c then report c)
         handlers
     | Parsetree.Pexp_match (_, cases) ->
       List.iter
         (fun (c : Parsetree.case) ->
           match c.Parsetree.pc_lhs.ppat_desc with
           | Parsetree.Ppat_exception _ -> if swallowing_case c then report c
           | _ -> ())
         cases
     | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it str;
  List.rev !findings

let check_tree _ = []

let explain =
  "In the 2PC / health / deadlock paths, try ... with _ -> () erases \
   exactly the evidence recovery needs: a swallowed ROLLBACK PREPARED \
   failure leaves an orphaned prepared transaction holding locks with \
   no counter ticking anywhere, and monitoring sees a healthy cluster. \
   Catch-alls there must re-raise or feed a recorder \
   (Health.record_ignored, a log function) so the swallow is at least \
   counted. The recorder call is the escape hatch — make the swallow \
   observable and the rule is satisfied."

let check_program _ = []
