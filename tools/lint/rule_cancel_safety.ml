(** L11 cancellation-safety: a resource acquired and then held across a
    suspension point can leak, because [Sched.cancel] delivers
    [Cancelled] at the very next suspension and unwinds the fiber.

    Acquire primitives: [State.checkout] (connection), [Lock.acquire],
    [Trace.open_span]. A suspension point is a direct primitive use or a
    call to a transitively-suspending function ({!Suspend.facts}). The
    pair fires when, {e within one lambda body} (evaluation order across
    different closures is not lexical), an unprotected acquire is
    textually followed by an unprotected suspension before a matching
    release ([Lock.release_all] / [Manager.commit] / [Manager.abort] for
    locks, [Trace.close_span] for spans).

    Protection is a [Fun.protect] bracket — release runs on any unwind,
    [Cancelled] included — or a cancellation barrier ([with_sched] /
    [Sched.run]: the frame driving the scheduler is not itself a fiber,
    so [Cancelled] cannot be delivered to it). Escape hatch:
    [[\@lint.cancel_safe]] on the acquire expression, asserting the
    resource is owned by something that outlives the fiber (e.g. a pool
    that sweeps it). *)

let id = "L11"
let name = "cancel-safety"

let doc =
  "resource acquire (State.checkout / Lock.acquire / Trace.open_span) \
   followed by a suspension point must be bracketed by Fun.protect or a \
   cancellation barrier (escape hatch: [@lint.cancel_safe])"

let explain =
  "Cancellation is delivered at suspension points: a fiber parked on \
   await / sleep / wait can be unwound by Sched.cancel at any moment \
   its body suspends. If it acquired a connection (State.checkout), a \
   lock (Lock.acquire) or a span (Trace.open_span) before suspending, \
   the unwind skips the release and the resource leaks — the exact bug \
   class the chaos harness caught in the PR 6 hedging path. Wrap the \
   acquire+use in Fun.protect ~finally:release (the finally runs on \
   Cancelled too), or keep it under the with_sched / Sched.run frame \
   itself (that frame is the scheduler's driver, not a fiber, so it \
   cannot be cancelled). The window closes at a matching release \
   (Lock.release_all, Manager.commit/abort, Trace.close_span) in the \
   same lambda. Escape hatch: [@lint.cancel_safe] on the acquire, for \
   resources owned by a longer-lived registry that sweeps them (e.g. \
   pooled connections registered with the session)."

let applies _ = false
let check ~path:_ _ = []
let check_tree _ = []

type res = Conn | Lock | Span

let acquire_of comps =
  match List.rev comps with
  | last :: prev :: _ ->
    if String.equal prev "State" && String.equal last "checkout" then Some Conn
    else if String.equal prev "Lock" && String.equal last "acquire" then
      Some Lock
    else if String.equal prev "Trace" && String.equal last "open_span" then
      Some Span
    else None
  | _ -> None

let releases res comps =
  match List.rev comps with
  | last :: prev :: _ -> (
    match res with
    | Lock ->
      (String.equal prev "Lock" && String.equal last "release_all")
      || (String.equal prev "Manager"
          && (String.equal last "commit" || String.equal last "abort"))
    | Span -> String.equal prev "Trace" && String.equal last "close_span"
    | Conn -> false (* pool-owned; no in-function release primitive *))
  | _ -> false

let escape_hatch = "lint.cancel_safe"

let in_scope_file path =
  Rule.starts_with "lib/" path && not (Rule.starts_with "lib/sim/" path)

let line_of (s : Callgraph.site) =
  s.Callgraph.s_loc.Location.loc_start.Lexing.pos_lnum

let pos_of (s : Callgraph.site) =
  s.Callgraph.s_loc.Location.loc_start.Lexing.pos_cnum

let check_program (files : (string * Parsetree.structure) list) =
  let g = Callgraph.build files in
  let fact = Suspend.facts g in
  let suspends (s : Callgraph.site) =
    (not (Suspend.site_blocking_ok s))
    && (Suspend.site_is_prim g s
        ||
        match Callgraph.resolved g s with
        | Some tgt -> fact tgt
        | None -> false)
  in
  let findings =
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        if not (in_scope_file fn.Callgraph.f_file) then []
        else
          List.filter_map
            (fun (a : Callgraph.site) ->
              match (a.Callgraph.s_kind, acquire_of a.Callgraph.s_path) with
              | Callgraph.Call _, Some res
                when (not a.Callgraph.s_protected)
                     && not (List.mem escape_hatch a.Callgraph.s_attrs) -> (
                (* the window: same lambda, textually after the acquire,
                   up to the first matching release *)
                let after =
                  List.filter
                    (fun (s : Callgraph.site) ->
                      s.Callgraph.s_lam = a.Callgraph.s_lam
                      && pos_of s > pos_of a)
                    fn.Callgraph.f_sites
                in
                let rec first_hazard = function
                  | [] -> None
                  | (s : Callgraph.site) :: rest ->
                    if releases res s.Callgraph.s_path then None
                    else if (not s.Callgraph.s_protected) && suspends s then
                      Some s
                    else first_hazard rest
                in
                match first_hazard after with
                | Some s ->
                  Some
                    (Rule.finding ~id ~file:fn.Callgraph.f_file
                       ~loc:a.Callgraph.s_loc
                       (Printf.sprintf
                          "%s acquires a resource that is still held at the \
                           suspension point %s (line %d); Cancelled can be \
                           delivered there and the release never runs — \
                           wrap acquire+use in Fun.protect ~finally, or \
                           annotate [@lint.cancel_safe] if a longer-lived \
                           owner sweeps it"
                          (String.concat "." a.Callgraph.s_path)
                          (String.concat "." s.Callgraph.s_path)
                          (line_of s)))
                | None -> None)
              | _ -> None)
            fn.Callgraph.f_sites)
      g.Callgraph.fns
  in
  List.sort
    (fun (a : Rule.finding) b ->
      compare (a.file, a.line, a.col) (b.file, b.line, b.col))
    findings
