(** L12 deadline-propagation: no unbounded wait on the statement path.

    The statement-execution entry points are
    [Adaptive_executor.execute] and every top-level function of
    [Twopc]. A forward reachability fixpoint over the call graph marks
    everything they can reach; inside the reachable set, every direct
    use of a parking await — [Connection.await], [Sched.await],
    [Sched.await_result] — must pass a [~deadline]/[?deadline]
    argument, or the statement can hang past its [statement_timeout] on
    one stalled node.

    Reachability deliberately ignores the [s_stopped] suspension
    barrier: a fiber spawned by the executor is still {e on the
    statement path} even though its suspension does not propagate to
    the spawner — the client is waiting on its join.

    Escape hatch: [[\@lint.unbounded]] on the await, asserting the wait
    is bounded by other means (e.g. every round trip inside the awaited
    fiber already carries the phase deadline, so the fiber's completion
    is transitively bounded and an extra ?deadline would only leave the
    fiber running unjoined). *)

let id = "L12"
let name = "deadline-propagation"

let doc =
  "Connection.await / Sched.await / Sched.await_result reachable from \
   Adaptive_executor.execute or Twopc.* must receive ?deadline (escape \
   hatch: [@lint.unbounded])"

let explain =
  "statement_timeout is only as good as its weakest await: one \
   deadline-less Connection.await on the statement path turns a gray \
   failure (a stalled-but-alive node) back into an unbounded client \
   hang, which is precisely what PR 6's deadline machinery exists to \
   prevent. L12 computes forward reachability from the statement entry \
   points (Adaptive_executor.execute, Twopc.*) over the whole-program \
   call graph — through spawned fibers too, since the client waits on \
   their join — and requires every reachable parking await \
   (Connection.await / Sched.await / Sched.await_result) to carry \
   ?deadline. Escape hatch: [@lint.unbounded] on the await, for waits \
   bounded by other means — e.g. joining a fiber whose every internal \
   round trip already carries the phase deadline; handing ?deadline to \
   that join would be worse, because Error Timed_out abandons the \
   still-running fiber and its failure re-raises at scheduler exit."

let applies _ = false
let check ~path:_ _ = []
let check_tree _ = []

let is_entry (fn : Callgraph.fn) =
  let { Callgraph.m; v } = fn.Callgraph.f_id in
  (String.equal m "Adaptive_executor" && String.equal v "execute")
  || String.equal m "Twopc"

(* the parking awaits whose bound must be explicit; [await_any] already
   requires explicit deadlines by type, [join_all]/[wait] are covered
   through the fibers they join *)
let is_await comps =
  match List.rev comps with
  | last :: prev :: _ ->
    (String.equal prev "Connection" && String.equal last "await")
    || (String.equal prev "Sched"
        && (String.equal last "await" || String.equal last "await_result"))
  | _ -> false

let escape_hatch = "lint.unbounded"

let in_scope_file path =
  Rule.starts_with "lib/" path && not (Rule.starts_with "lib/sim/" path)

let check_program (files : (string * Parsetree.structure) list) =
  let g = Callgraph.build files in
  let reachable =
    Dataflow.solve g ~dir:Dataflow.Forward ~bottom:false ~equal:Bool.equal
      ~join:( || ) ~init:is_entry
      ~transfer:(fun ~site:_ ~dep:_ fact -> fact)
  in
  let findings =
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        if
          (not (in_scope_file fn.Callgraph.f_file))
          || not (is_entry fn || reachable fn.Callgraph.f_id)
        then []
        else
          List.filter_map
            (fun (s : Callgraph.site) ->
              if
                is_await s.Callgraph.s_path
                && (not (List.mem escape_hatch s.Callgraph.s_attrs))
                &&
                match s.Callgraph.s_kind with
                | Callgraph.Call { labels } ->
                  not (List.mem "deadline" labels)
                | Callgraph.Value -> true
              then
                Some
                  (Rule.finding ~id ~file:fn.Callgraph.f_file
                     ~loc:s.Callgraph.s_loc
                     (Printf.sprintf
                        "%s is reachable from the statement path (via %s) \
                         but receives no ?deadline — a stalled node makes \
                         the statement hang past its statement_timeout; \
                         thread the deadline through, or annotate \
                         [@lint.unbounded] if the wait is bounded by other \
                         means"
                        (String.concat "." s.Callgraph.s_path)
                        (Callgraph.id_str fn.Callgraph.f_id)))
              else None)
            fn.Callgraph.f_sites)
      g.Callgraph.fns
  in
  List.sort
    (fun (a : Rule.finding) b ->
      compare (a.file, a.line, a.col) (b.file, b.line, b.col))
    findings
