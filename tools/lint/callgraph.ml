(** Whole-program call graph over a set of parsed [.ml] files.

    Nodes are top-level [let]-bound functions, identified by
    (module, value) where the module is the capitalized file basename
    (dune's mapping) or an inner [module M = struct .. end] name. Edges
    are resolved identifier references inside a function's body:

    - cross-module: [Cluster.Connection.await] resolves by the {e last}
      module component ([Connection]) plus the value name — the same
      convention the per-file rules use, unambiguous here because the
      tree has no duplicate basenames;
    - same-module: an unqualified [f] resolves against the enclosing
      module's own top-level names;
    - local opens: inside [Cluster.Connection.( ... )] or
      [let open M in ...], unqualified names additionally resolve
      against the opened module (innermost first), and a file-level
      [open M] extends that to the whole file;
    - higher-order uses are approximated conservatively: {e any}
      reference to a known function — applied or passed as a value —
      is an edge, so a function handed to [List.iter] keeps its callers
      on the hook for whatever it reaches;
    - [let]-bound aliases ([let f = Other.g]) are recorded and
      {!resolved} follows the chain.

    Each reference site also records the lexical facts the
    interprocedural rules need: whether an L9-style scheduler scope is
    in sight, whether suspension-propagation is stopped (the site sits
    under a [with_sched]/[Sched.run] handler or inside a nested
    [fun sched ->] closure), whether a bracket ([Fun.protect]) protects
    it, which [lint.*] attributes enclose it, and the innermost lambda
    it belongs to (evaluation of different lambdas is unordered).

    Soundness caveats (documented in DESIGN.md §4c): locally-bound
    functions are not nodes (their suspensions are attributed to the
    enclosing top-level function's sites); a local value shadowing a
    top-level name still resolves to the top-level function
    (over-approximation: extra edges); first-class function values
    stored in records/refs are invisible once they leave the defining
    expression. *)

type fn_id = { m : string; v : string }

let id_str { m; v } = m ^ "." ^ v

type kind =
  | Call of { labels : string list }
      (** head of an application; [labels] holds the names of the
          labelled / optional arguments passed ([~deadline],
          [?snapshot], …) so argument-threading rules can check any
          label without re-walking the AST *)
  | Value  (** alias target, higher-order argument, stored closure *)

type site = {
  s_path : string list;  (** the reference as written, e.g. ["Sim";"Sched";"await"] *)
  s_target : fn_id option;  (** resolution against the program's definitions *)
  s_kind : kind;
  s_loc : Location.t;
  s_in_scope : bool;
      (** L9 fiber discipline: under with_sched / Sched.run / Sched.spawn
          or a [fun sched ->] *)
  s_stopped : bool;
      (** suspension does not escape the enclosing function through this
          site: a with_sched/Sched.run handler is installed around it, or
          it sits in a nested [fun sched ->] closure whose invocation the
          graph cannot see *)
  s_protected : bool;
      (** inside a [Fun.protect] bracket or a cancellation barrier
          (with_sched / Sched.run: the calling frame is not a fiber) *)
  s_lam : int;  (** innermost lambda: sites in different lambdas are unordered *)
  s_attrs : string list;  (** [lint.*] attribute names in lexical scope *)
}

type fn = {
  f_id : fn_id;
  f_file : string;
  f_loc : Location.t;
  f_takes_sched : bool;  (** required leading parameter named [sched] *)
  f_opt_sched : bool;
      (** optional [?sched] leading parameter: dual-mode by construction
          (without a scheduler the function must not suspend) *)
  f_attrs : string list;  (** [lint.*] attributes on the binding *)
  f_alias : fn_id option;  (** body is a bare reference to another function *)
  f_sites : site list;  (** in source order *)
}

type t = {
  fns : fn list;  (** file order, then source order — deterministic *)
  index : (string * string, fn) Hashtbl.t;  (** multi-binding: find_all *)
}

(* --- small helpers --- *)

let module_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let binding_name (vb : Parsetree.value_binding) =
  match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> Some txt
  | Parsetree.Ppat_constraint
      ({ ppat_desc = Parsetree.Ppat_var { txt; _ }; _ }, _) ->
    Some txt
  | _ -> None

let is_sched_pat (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ }
  | Parsetree.Ppat_constraint
      ({ ppat_desc = Parsetree.Ppat_var { txt; _ }; _ }, _) ->
    String.equal txt "sched" || String.equal txt "_sched"
  | _ -> false

let is_sched_label = function
  | Asttypes.Labelled "sched" | Asttypes.Optional "sched" -> true
  | _ -> false

let lint_attrs (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      let n = a.Parsetree.attr_name.txt in
      if Rule.starts_with "lint." n then Some n else None)
    attrs

(* Applications whose lambda arguments run with a scheduler in hand
   (grant the L9 discipline), and those that additionally install the
   effect handler themselves (stop suspension propagation outward). *)
let grants_scope comps =
  match List.rev comps with
  | last :: rest -> (
    String.equal last "with_sched"
    ||
    match rest with
    | prev :: _ ->
      String.equal prev "Sched"
      && (String.equal last "run" || String.equal last "spawn")
    | [] -> false)
  | [] -> false

let installs_handler comps =
  match List.rev comps with
  | last :: rest -> (
    String.equal last "with_sched"
    ||
    match rest with
    | prev :: _ -> String.equal prev "Sched" && String.equal last "run"
    | [] -> false)
  | [] -> false

(* Brackets whose body runs with cleanup guaranteed ([Fun.protect]), and
   cancellation barriers: the frame calling [with_sched] / [Sched.run] is
   not itself a fiber, so [Cancelled] cannot be delivered to it. *)
let protects comps =
  match List.rev comps with
  | last :: rest ->
    String.equal last "protect"
    || String.equal last "with_sched"
    || (match rest with
        | prev :: _ -> String.equal prev "Sched" && String.equal last "run"
        | [] -> false)
  | [] -> false

let ident_comps (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } ->
    (try Longident.flatten txt with _ -> [])
  | _ -> []

(* --- pass 1: every (module, value) the program defines --- *)

let collect_defined files =
  let defined : (string * string, unit) Hashtbl.t = Hashtbl.create 512 in
  let rec collect mname (str : Parsetree.structure) =
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.Parsetree.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_name vb with
              | Some n -> Hashtbl.replace defined (mname, n) ()
              | None -> ())
            vbs
        | Parsetree.Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Parsetree.Pmod_structure s; _ };
              _;
            } ->
          collect sub s
        | _ -> ())
      str
  in
  List.iter (fun (path, str) -> collect (module_of_path path) str) files;
  defined

(* --- pass 2: one fn record per top-level binding --- *)

type walk_ctx = {
  mutable in_scope : bool;
  mutable stopped : bool;
  mutable protected_ : bool;
  mutable lam : int;
  mutable attrs : string list;
  mutable opens : string list;  (** last components of locally-opened modules *)
}

let resolve defined ~cur_module ~opens comps =
  match comps with
  | [] -> None
  | [ n ] ->
    if Hashtbl.mem defined (cur_module, n) then Some { m = cur_module; v = n }
    else
      List.find_map
        (fun om ->
          if Hashtbl.mem defined (om, n) then Some { m = om; v = n } else None)
        opens
  | _ -> (
    let rec last2 = function
      | [ m; v ] -> (m, v)
      | _ :: rest -> last2 rest
      | [] -> assert false
    in
    let m, v = last2 comps in
    if Hashtbl.mem defined (m, v) then Some { m; v } else None)

let walk_binding defined ~file ~cur_module (vb : Parsetree.value_binding) :
    fn option =
  match binding_name vb with
  | None -> None
  | Some name ->
    let takes_sched = ref false in
    let opt_sched = ref false in
    (* strip the leading parameter chain: those lambdas are the
       function's own signature, not deferred closures *)
    let rec strip (e : Parsetree.expression) =
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_fun (lbl, _, pat, body) ->
        (match lbl with
         | Asttypes.Optional "sched" -> opt_sched := true
         | _ -> if is_sched_pat pat || is_sched_label lbl then takes_sched := true);
        strip body
      | Parsetree.Pexp_newtype (_, body) -> strip body
      | _ -> e
    in
    let body = strip vb.Parsetree.pvb_expr in
    let alias =
      match ident_comps body with
      | [] -> None
      | comps -> resolve defined ~cur_module ~opens:[] comps
    in
    let sites = ref [] in
    let next_lam = ref 0 in
    let ctx =
      {
        in_scope = !takes_sched;
        stopped = false;
        protected_ = false;
        lam = 0;
        attrs = [];
        opens = [];
      }
    in
    (* heads of applications already recorded as Call sites; their bare
       idents must not be double-counted as Value references *)
    let consumed : Parsetree.expression list ref = ref [] in
    let record (e : Parsetree.expression) ~kind comps =
      if comps <> [] then
        let last = List.nth comps (List.length comps - 1) in
        if String.length last > 0 && last.[0] >= 'a' && last.[0] <= 'z' then begin
          let target = resolve defined ~cur_module ~opens:ctx.opens comps in
          (* bare local names that resolve to nothing are just variables *)
          if target <> None || List.length comps > 1 then
            sites :=
              {
                s_path = comps;
                s_target = target;
                s_kind = kind;
                s_loc = e.Parsetree.pexp_loc;
                s_in_scope = ctx.in_scope;
                s_stopped = ctx.stopped;
                s_protected = ctx.protected_;
                s_lam = ctx.lam;
                s_attrs = ctx.attrs;
              }
              :: !sites
        end
    in
    let super = Ast_iterator.default_iterator in
    let expr it (e : Parsetree.expression) =
      let saved_scope = ctx.in_scope
      and saved_stop = ctx.stopped
      and saved_prot = ctx.protected_
      and saved_lam = ctx.lam
      and saved_attrs = ctx.attrs
      and saved_opens = ctx.opens in
      ctx.attrs <- lint_attrs e.Parsetree.pexp_attributes @ ctx.attrs;
      (match e.Parsetree.pexp_desc with
       | Parsetree.Pexp_ident _ when not (List.memq e !consumed) ->
         record e ~kind:Value (ident_comps e)
       | Parsetree.Pexp_apply (head, args) ->
         let comps = ident_comps head in
         if comps <> [] then begin
           consumed := head :: !consumed;
           let labels =
             List.filter_map
               (fun (lbl, _) ->
                 match lbl with
                 | Asttypes.Labelled l | Asttypes.Optional l -> Some l
                 | Asttypes.Nolabel -> None)
               args
           in
           record head ~kind:(Call { labels }) comps
         end;
         if grants_scope comps then ctx.in_scope <- true;
         if installs_handler comps then ctx.stopped <- true;
         if protects comps then ctx.protected_ <- true
       | Parsetree.Pexp_fun (lbl, _, pat, _) ->
         incr next_lam;
         ctx.lam <- !next_lam;
         if is_sched_pat pat || is_sched_label lbl then begin
           ctx.in_scope <- true;
           (* a nested closure demanding a scheduler: its suspensions do
              not escape through lexical position — only through calls
              the graph cannot attribute — so propagation stops here *)
           ctx.stopped <- true
         end
       | Parsetree.Pexp_open
           ( { popen_expr = { pmod_desc = Parsetree.Pmod_ident { txt; _ }; _ }; _ },
             _ ) ->
         (match try Longident.flatten txt with _ -> [] with
          | [] -> ()
          | comps ->
            ctx.opens <- List.nth comps (List.length comps - 1) :: ctx.opens)
       | _ -> ());
      super.Ast_iterator.expr it e;
      ctx.in_scope <- saved_scope;
      ctx.stopped <- saved_stop;
      ctx.protected_ <- saved_prot;
      ctx.lam <- saved_lam;
      ctx.attrs <- saved_attrs;
      ctx.opens <- saved_opens
    in
    let it = { super with Ast_iterator.expr } in
    it.Ast_iterator.expr it body;
    Some
      {
        f_id = { m = cur_module; v = name };
        f_file = file;
        f_loc = vb.Parsetree.pvb_loc;
        f_takes_sched = !takes_sched;
        f_opt_sched = !opt_sched;
        f_attrs = lint_attrs vb.Parsetree.pvb_attributes;
        f_alias = alias;
        f_sites = List.rev !sites;
      }

(* File-level [open M] statements widen unqualified resolution for every
   binding below them; handled by pre-scanning the structure. *)
let build (files : (string * Parsetree.structure) list) : t =
  let defined = collect_defined files in
  let fns = ref [] in
  let rec walk_str ~file ~cur_module (str : Parsetree.structure) =
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.Parsetree.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match walk_binding defined ~file ~cur_module vb with
              | Some fn -> fns := fn :: !fns
              | None -> ())
            vbs
        | Parsetree.Pstr_module
            {
              pmb_name = { txt = Some sub; _ };
              pmb_expr = { pmod_desc = Parsetree.Pmod_structure s; _ };
              _;
            } ->
          walk_str ~file ~cur_module:sub s
        | _ -> ())
      str
  in
  List.iter
    (fun (path, str) -> walk_str ~file:path ~cur_module:(module_of_path path) str)
    files;
  let fns = List.rev !fns in
  let index = Hashtbl.create 512 in
  (* Hashtbl.add keeps multiple bindings of one id retrievable; reverse
     so find_all yields them in definition order *)
  List.iter (fun fn -> Hashtbl.add index (fn.f_id.m, fn.f_id.v) fn)
    (List.rev fns);
  { fns; index }

let find t (id : fn_id) = Hashtbl.find_all t.index (id.m, id.v)

(* Follow [let f = Other.g] chains (cycle-bounded). *)
let rec chase t fuel (id : fn_id) =
  if fuel = 0 then id
  else
    match find t id with
    | { f_alias = Some next; f_sites = [ _ ]; _ } :: _ ->
      (* a pure alias has exactly one site: the target reference *)
      chase t (fuel - 1) next
    | _ -> id

(** A site's target with [let]-bound aliases followed. *)
let resolved t (s : site) =
  match s.s_target with None -> None | Some id -> Some (chase t 8 id)

(** Call sites referencing [id] (directly or through an alias), with the
    referencing function — the reverse edge set. *)
let callers t (id : fn_id) =
  List.concat_map
    (fun fn ->
      List.filter_map
        (fun s ->
          match resolved t s with
          | Some tgt when tgt.m = id.m && tgt.v = id.v -> Some (fn, s)
          | _ -> None)
        fn.f_sites)
    t.fns
