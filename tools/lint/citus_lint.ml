(** citus_lint — compiler-libs invariant checker for the Citus repro.

    Usage: citus_lint [--baseline FILE] [--rule ID]... [--list-rules]
                      [--explain RULE] [--sexp] PATH...

    Parses every .ml under the given paths into Parsetrees and runs the
    rule table ({!Registry.all}) over them. Exits non-zero when any
    non-grandfathered finding (or stale baseline entry, or parse error)
    remains. [--sexp] swaps the human lines for one canonical
    s-expression per finding (stable order, bit-reproducible) for
    editor/CI integration. *)

let usage =
  "citus_lint [--baseline FILE] [--rule ID]... [--list-rules] [--explain \
   RULE] [--sexp] PATH..."

(* wrap a one-paragraph string at [width] columns for terminal output *)
let wrap ?(width = 76) s =
  let words = String.split_on_char ' ' s in
  let buf = Buffer.create (String.length s + 16) in
  let col = ref 0 in
  List.iter
    (fun w ->
      if String.length w > 0 then
        if !col = 0 then begin
          Buffer.add_string buf w;
          col := String.length w
        end
        else if !col + 1 + String.length w > width then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf w;
          col := String.length w
        end
        else begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf w;
          col := !col + 1 + String.length w
        end)
    words;
  Buffer.contents buf

let () =
  let baseline_file = ref None in
  let rule_ids = ref [] in
  let list_rules = ref false in
  let explain = ref None in
  let sexp = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun f -> baseline_file := Some f),
        "FILE sexp allowlist of grandfathered findings (shrink-only)" );
      ( "--rule",
        Arg.String (fun r -> rule_ids := r :: !rule_ids),
        "ID run only this rule (repeatable; id like L1 or name like \
         sql-injection)" );
      ("--list-rules", Arg.Set list_rules, " print the rule table and exit");
      ( "--explain",
        Arg.String (fun r -> explain := Some r),
        "RULE print the rule's rationale and escape hatch, then exit" );
      ( "--sexp",
        Arg.Set sexp,
        " emit findings as canonical s-expressions (stable order, \
         bit-reproducible)" );
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  (match !explain with
   | None -> ()
   | Some r ->
     (match Registry.find r with
      | Some rule ->
        let module R = (val rule) in
        Printf.printf "%s %s — %s\n\n%s\n" R.id R.name (wrap R.doc)
          (wrap R.explain);
        exit 0
      | None ->
        prerr_endline ("citus_lint: unknown rule " ^ r);
        exit 2));
  if !list_rules then begin
    List.iter
      (fun (rule : Rule.t) ->
        let module R = (val rule) in
        Printf.printf "%-4s %-20s %s\n" R.id R.name R.doc)
      Registry.all;
    exit 0
  end;
  let rules =
    match !rule_ids with
    | [] -> Registry.all
    | ids ->
      List.map
        (fun id ->
          match Registry.find id with
          | Some r -> r
          | None ->
            prerr_endline ("citus_lint: unknown rule " ^ id);
            exit 2)
        (List.rev ids)
  in
  let roots = match List.rev !roots with [] -> [ "." ] | rs -> rs in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline ("citus_lint: no such path " ^ r);
        exit 2
      end)
    roots;
  let baseline =
    match !baseline_file with
    | None -> []
    | Some f -> Lint_engine.load_baseline f
  in
  let paths = Lint_engine.scan roots in
  let outcome = Lint_engine.run ~baseline ~rules paths in
  let sorted =
    List.sort Lint_engine.compare_findings outcome.Lint_engine.findings
  in
  if !sexp then begin
    (* machine mode: canonical sexps only, no summary line *)
    List.iter
      (fun (file, msg) ->
        Printf.printf "((parse-error) (file \"%s\") (message \"%s\"))\n"
          (Lint_engine.sexp_escape file) (Lint_engine.sexp_escape msg))
      outcome.Lint_engine.parse_errors;
    List.iter
      (fun f -> print_endline (Lint_engine.finding_sexp f))
      sorted;
    List.iter
      (fun (b : Lint_engine.baseline_entry) ->
        Printf.printf "((stale-baseline) (rule %s) (file \"%s\") (line %d))\n"
          b.Lint_engine.b_rule
          (Lint_engine.sexp_escape b.Lint_engine.b_file)
          b.Lint_engine.b_line)
      outcome.Lint_engine.stale
  end
  else begin
    List.iter
      (fun (file, msg) ->
        Printf.printf "%s:1:0: [parse] %s\n" file msg)
      outcome.Lint_engine.parse_errors;
    List.iter
      (fun (f : Rule.finding) ->
        Printf.printf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.rule_id
          f.message)
      sorted;
    List.iter
      (fun (b : Lint_engine.baseline_entry) ->
        Printf.printf
          "%s:%d:0: [baseline] stale entry for %s: the finding is gone — \
           delete the entry (the baseline may only shrink)\n"
          b.Lint_engine.b_file b.Lint_engine.b_line b.Lint_engine.b_rule)
      outcome.Lint_engine.stale
  end;
  let n_findings = List.length sorted in
  let n_stale = List.length outcome.Lint_engine.stale in
  let n_parse = List.length outcome.Lint_engine.parse_errors in
  if n_findings + n_stale + n_parse > 0 then begin
    if not !sexp then
      Printf.printf "citus_lint: %d finding(s), %d stale baseline entr(ies), \
                     %d parse error(s) over %d file(s)\n"
        n_findings n_stale n_parse (List.length paths);
    exit 1
  end
  else if not !sexp then
    Printf.printf "citus_lint: clean (%d files, %d rules, %d grandfathered)\n"
      (List.length paths) (List.length rules) (List.length baseline)
