(** citus_lint — compiler-libs invariant checker for the Citus repro.

    Usage: citus_lint [--baseline FILE] [--rule ID]... [--list-rules]
                      PATH...

    Parses every .ml under the given paths into Parsetrees and runs the
    rule table ({!Registry.all}) over them. Exits non-zero when any
    non-grandfathered finding (or stale baseline entry, or parse error)
    remains. *)

let usage =
  "citus_lint [--baseline FILE] [--rule ID]... [--list-rules] PATH..."

let () =
  let baseline_file = ref None in
  let rule_ids = ref [] in
  let list_rules = ref false in
  let roots = ref [] in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun f -> baseline_file := Some f),
        "FILE sexp allowlist of grandfathered findings (shrink-only)" );
      ( "--rule",
        Arg.String (fun r -> rule_ids := r :: !rule_ids),
        "ID run only this rule (repeatable; id like L1 or name like \
         sql-injection)" );
      ("--list-rules", Arg.Set list_rules, " print the rule table and exit");
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (rule : Rule.t) ->
        let module R = (val rule) in
        Printf.printf "%-4s %-20s %s\n" R.id R.name R.doc)
      Registry.all;
    exit 0
  end;
  let rules =
    match !rule_ids with
    | [] -> Registry.all
    | ids ->
      List.map
        (fun id ->
          match Registry.find id with
          | Some r -> r
          | None ->
            prerr_endline ("citus_lint: unknown rule " ^ id);
            exit 2)
        (List.rev ids)
  in
  let roots = match List.rev !roots with [] -> [ "." ] | rs -> rs in
  List.iter
    (fun r ->
      if not (Sys.file_exists r) then begin
        prerr_endline ("citus_lint: no such path " ^ r);
        exit 2
      end)
    roots;
  let baseline =
    match !baseline_file with
    | None -> []
    | Some f -> Lint_engine.load_baseline f
  in
  let paths = Lint_engine.scan roots in
  let outcome = Lint_engine.run ~baseline ~rules paths in
  List.iter
    (fun (file, msg) ->
      Printf.printf "%s:1:0: [parse] %s\n" file msg)
    outcome.Lint_engine.parse_errors;
  let sorted =
    List.sort
      (fun (a : Rule.finding) b ->
        match String.compare a.file b.file with
        | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> String.compare a.rule_id b.rule_id
          | c -> c)
        | c -> c)
      outcome.Lint_engine.findings
  in
  List.iter
    (fun (f : Rule.finding) ->
      Printf.printf "%s:%d:%d: [%s] %s\n" f.file f.line f.col f.rule_id
        f.message)
    sorted;
  List.iter
    (fun (b : Lint_engine.baseline_entry) ->
      Printf.printf
        "%s:%d:0: [baseline] stale entry for %s: the finding is gone — \
         delete the entry (the baseline may only shrink)\n"
        b.Lint_engine.b_file b.Lint_engine.b_line b.Lint_engine.b_rule)
    outcome.Lint_engine.stale;
  let n_findings = List.length sorted in
  let n_stale = List.length outcome.Lint_engine.stale in
  let n_parse = List.length outcome.Lint_engine.parse_errors in
  if n_findings + n_stale + n_parse > 0 then begin
    Printf.printf "citus_lint: %d finding(s), %d stale baseline entr(ies), \
                   %d parse error(s) over %d file(s)\n"
      n_findings n_stale n_parse (List.length paths);
    exit 1
  end
  else
    Printf.printf "citus_lint: clean (%d files, %d rules, %d grandfathered)\n"
      (List.length paths) (List.length rules) (List.length baseline)
