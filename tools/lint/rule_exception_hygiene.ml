(** L3 exception-hygiene: partial stdlib lookups ([Hashtbl.find],
    [List.assoc], [Option.get], [List.hd]) are banned in [lib/core] and
    [lib/cluster] unless an enclosing [try]/[match ... with exception]
    handles the failure. A bare [Not_found] thrown by a catalog lookup
    crosses the adaptive-executor boundary and is indistinguishable from a
    node failure — the failover path then retries a query that can never
    succeed. Use the [_opt] variants with an explicit error path (a typed
    catalog error beats [Not_found] every time). *)

let id = "L3"
let name = "exception-hygiene"

let doc =
  "Hashtbl.find/List.assoc/Option.get/List.hd in lib/core and lib/cluster \
   need an enclosing try/match-exception or an _opt variant"

let applies path =
  Filename.check_suffix path ".ml"
  && (Rule.starts_with "lib/core/" path || Rule.starts_with "lib/cluster/" path)

let banned = function
  | [ "Hashtbl"; "find" ] | [ "List"; "assoc" ] | [ "Option"; "get" ]
  | [ "List"; "hd" ] ->
    true
  | _ -> false

let rec has_exception_case (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_exception _ -> true
  | Parsetree.Ppat_or (a, b) -> has_exception_case a || has_exception_case b
  | _ -> false

let check ~path (str : Parsetree.structure) =
  let findings = ref [] in
  (* > 0 while inside a [try] body or the scrutinee of a match that has an
     [exception] case: the failure has a lexical handler *)
  let protected = ref 0 in
  let super = Ast_iterator.default_iterator in
  let rec expr it (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_try (body, handlers) ->
      incr protected;
      expr it body;
      decr protected;
      List.iter (fun (c : Parsetree.case) -> case it c) handlers
    | Parsetree.Pexp_match (scrut, cases)
      when List.exists
             (fun (c : Parsetree.case) -> has_exception_case c.pc_lhs)
             cases ->
      incr protected;
      expr it scrut;
      decr protected;
      List.iter (fun c -> case it c) cases
    | Parsetree.Pexp_ident { txt; _ } ->
      let comps = try Longident.flatten txt with _ -> [] in
      if !protected = 0 && banned comps then
        findings :=
          Rule.finding ~id ~file:path ~loc:e.pexp_loc
            (Printf.sprintf
               "partial %s can raise across the executor boundary and \
                masquerade as a node failure; use the _opt variant with an \
                explicit error path, or wrap in try/match-exception"
               (String.concat "." comps))
          :: !findings
    | _ -> super.Ast_iterator.expr it e
  and case it (c : Parsetree.case) =
    Option.iter (expr it) c.pc_guard;
    expr it c.pc_rhs
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it str;
  List.rev !findings

let check_tree _ = []

let explain =
  "A bare Not_found thrown by a catalog lookup crosses the \
   adaptive-executor boundary and is indistinguishable from a node \
   failure — the failover path then retries a query that can never \
   succeed. Partial stdlib lookups (Hashtbl.find, List.assoc, \
   Option.get, List.hd) are therefore banned in lib/core and \
   lib/cluster unless an enclosing try or match-with-exception handles \
   the failure locally. Prefer the _opt variants with an explicit \
   error path; a typed catalog error beats Not_found every time. The \
   enclosing-handler allowance is the escape hatch."

let check_program _ = []
