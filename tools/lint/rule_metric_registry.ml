(** L13 metric-registry: every [Obs.Metrics] name must come from the
    central registry module [Obs.Metric_names], so the set of series a
    cluster can emit — what [citus_stat_counters()] reports — is closed
    and documented in one place.

    The name is always the second positional argument of the [Metrics]
    entry points ([inc], [gauge_add], [gauge_set], [observe],
    [register_probe], [counter_value], [gauge_value]); it passes when it
    is an identifier from [Metric_names] or an application whose head is
    (the registry's family constructors: [net_connect_to],
    [planner_tier], [breaker_transition], …). Anything else — a string
    literal, [^] concatenation, a local helper — is a finding.

    Escape hatch: [[\@lint.metric_adhoc]] on the name expression, for
    genuinely dynamic names that cannot live in a registry (none exist
    today; the families cover every parameterized series). *)

let id = "L13"
let name = "metric-registry"

let doc =
  "Obs.Metrics names must be constants or family constructors from \
   Obs.Metric_names (escape hatch: [@lint.metric_adhoc])"

let explain =
  "citus_stat_counters()-style introspection is only trustworthy when \
   the series set is closed: a dashboard or alert keyed on a metric \
   name must be able to enumerate every name the code can emit. \
   Scattered string literals drift — a typo creates a parallel series \
   (\"exec.timeout\" vs \"exec.timeouts\") that silently splits the \
   count. L13 requires the second positional argument of every \
   Obs.Metrics entry point (inc / gauge_add / gauge_set / observe / \
   register_probe / counter_value / gauge_value) to be drawn from \
   Obs.Metric_names: either a constant (Metric_names.exec_tasks) or an \
   application of one of its family constructors \
   (Metric_names.net_connect_to node). Add new series to the registry \
   with a doc comment; the .mli is the catalogue. Escape hatch: \
   [@lint.metric_adhoc] on the name expression, for a truly dynamic \
   name that cannot be registered."

let metric_fns =
  [ "inc"; "gauge_add"; "gauge_set"; "observe"; "register_probe";
    "counter_value"; "gauge_value" ]

let is_metric_call comps =
  match List.rev comps with
  | last :: prev :: _ -> String.equal prev "Metrics" && List.mem last metric_fns
  | _ -> false

(* [Obs.Metric_names.exec_tasks] / [Metric_names.net_connect_to node] *)
let from_registry (e : Parsetree.expression) =
  let rooted comps =
    match List.rev comps with
    | _ :: prev :: _ -> String.equal prev "Metric_names"
    | _ -> false
  in
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident _ -> rooted (Rule.ident_path e)
  | Parsetree.Pexp_apply (head, _) -> rooted (Rule.ident_path head)
  | _ -> false

let escape_hatch = "lint.metric_adhoc"

let applies path =
  Filename.check_suffix path ".ml"
  && Rule.starts_with "lib/" path
  && not (Rule.starts_with "lib/obs/" path)

let check ~path (str : Parsetree.structure) =
  let findings = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_apply (head, args)
       when is_metric_call (Rule.ident_path head) -> (
       let positional =
         List.filter_map
           (fun (lbl, a) ->
             match lbl with Asttypes.Nolabel -> Some a | _ -> None)
           args
       in
       match positional with
       | _ :: (name_arg : Parsetree.expression) :: _ ->
         if
           (not (from_registry name_arg))
           && (not
                 (Rule.has_attr escape_hatch name_arg.Parsetree.pexp_attributes))
           && not (Rule.has_attr escape_hatch e.Parsetree.pexp_attributes)
         then
           findings :=
             Rule.finding ~id ~file:path ~loc:name_arg.Parsetree.pexp_loc
               (Printf.sprintf
                  "metric name passed to %s is not drawn from \
                   Obs.Metric_names; register the series (or a family \
                   constructor) there so the emitted set stays closed, or \
                   annotate [@lint.metric_adhoc]"
                  (String.concat "." (Rule.ident_path head)))
             :: !findings
       | _ -> ())
     | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it str;
  List.rev !findings

let check_tree _ = []
let check_program _ = []
