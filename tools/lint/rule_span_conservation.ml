(** L8 span-conservation: spans are created through the bracketed
    combinators ({!Obs.Trace.with_span} / [with_span_parent]), never by
    calling [open_span] / [close_span] directly outside [lib/obs/].

    The chaos harness asserts span conservation — every span started is
    eventually finished — and the bracketed forms guarantee it by
    construction ([Fun.protect]). A manual open/close pair loses the
    close on any exception path, which shows up later as a phantom open
    span in a bit-identical-replay diff, far from the code that leaked
    it. [open_span]/[close_span] stay exported because the combinators
    (and fiber-aware span plumbing inside [lib/obs/]) are built on them. *)

let id = "L8"
let name = "span-conservation"

let doc =
  "Obs.Trace.open_span/close_span must not be called outside lib/obs/; \
   use the bracketed with_span / with_span_parent combinators"

let applies path =
  Filename.check_suffix path ".ml" && not (Rule.starts_with "lib/obs/" path)

let is_manual_span_call comps =
  match List.rev comps with
  | last :: prev :: _ ->
    String.equal prev "Trace"
    && (String.equal last "open_span" || String.equal last "close_span")
  | _ -> false

let check ~path (str : Parsetree.structure) =
  let findings = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_apply (f, _) ->
       let comps = Rule.ident_path f in
       if is_manual_span_call comps then
         findings :=
           Rule.finding ~id ~file:path ~loc:e.pexp_loc
             (Printf.sprintf
                "%s opens/closes a span manually; exception paths leak the \
                 span and break span conservation — wrap the work in \
                 Obs.Trace.with_span (or with_span_parent from scheduler \
                 fibers) instead"
                (String.concat "." comps))
           :: !findings
     | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it str;
  List.rev !findings

let check_tree _ = []

let explain =
  "The chaos harness asserts span conservation — every span started is \
   eventually finished — and the bracketed combinators \
   (Obs.Trace.with_span / with_span_parent) guarantee it by \
   construction via Fun.protect. A manual open_span/close_span pair \
   loses the close on any exception path, which surfaces later as a \
   phantom open span in a bit-identical-replay diff, far from the code \
   that leaked it. Outside lib/obs/ (where the combinators themselves \
   are built), use the brackets. No attribute escape hatch."

let check_program _ = []
