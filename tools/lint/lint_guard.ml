(** lint_guard — CI guard for the lint subsystem itself.

    Runs the full rule table (call-graph fixpoints included) over the
    given roots twice, in-process, and asserts:

    - {b determinism}: the rendered finding set is bit-identical across
      the two runs — the fixpoint and the graph construction must not
      leak hashtable iteration order into output;
    - {b wall-time}: one full run stays under a budget, so the
      interprocedural engine cannot make the default build sluggish.

    The budget is generous (the whole run takes well under a second
    today) — it exists to catch an accidentally quadratic fixpoint or
    witness search, not to benchmark. Lives in tools/ (outside the
    linted set) so it may read the wall clock. *)

let budget_seconds = 10.0

let render roots =
  let paths = Lint_engine.scan roots in
  let outcome = Lint_engine.run ~rules:Registry.all paths in
  let sorted =
    List.sort Lint_engine.compare_findings outcome.Lint_engine.findings
  in
  String.concat "\n"
    (List.map
       (fun (file, msg) -> Printf.sprintf "parse-error %s: %s" file msg)
       outcome.Lint_engine.parse_errors
    @ List.map Lint_engine.finding_sexp sorted)

let () =
  let roots =
    match Array.to_list Sys.argv with _ :: (_ :: _ as rs) -> rs | _ -> [ "." ]
  in
  let t0 = Unix.gettimeofday () in
  let first = render roots in
  let elapsed = Unix.gettimeofday () -. t0 in
  let second = render roots in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  if not (String.equal first second) then
    fail
      "lint_guard: findings differ between two identical runs — output is \
       not reproducible:\n--- first ---\n%s\n--- second ---\n%s"
      first second;
  if elapsed > budget_seconds then
    fail "lint_guard: lint run took %.2fs, over the %.1fs budget" elapsed
      budget_seconds;
  Printf.printf
    "lint_guard: ok (%.2fs, budget %.1fs, bit-identical across 2 runs)\n"
    elapsed budget_seconds
