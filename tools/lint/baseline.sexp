; citus_lint baseline — grandfathered findings, one (RULE FILE LINE) per
; entry, e.g. (L1 lib/core/twopc.ml 144). This file may only ever shrink:
; stale entries are themselves lint errors. It is empty — keep it that way.
