(** L1 sql-injection: a string built with [Printf.sprintf] / [(^)] must not
    flow into a SQL execution or parsing sink. Interior SQL is built from
    {!Sqlfront.Ast} values and deparsed in exactly one place; interpolating
    into SQL text re-opens the injection the executor-AST path closed
    (hostile gids, shard names, datum text all re-parse as SQL).

    Detection is syntactic: a sink argument is flagged when it is itself a
    string-building expression, or an identifier let-bound to one anywhere
    in the same compilation unit. The escape hatch is an
    [[@lint.sql_static]] attribute on an enclosing expression, asserting
    every interpolant is an internally generated identifier (never data,
    never anything a client can influence). *)

let id = "L1"
let name = "sql-injection"

let doc =
  "sprintf/(^)-built strings must not reach Connection.exec/exec_async, \
   Exec.on_conn*/raw_on_conn*, Executor.run*, or Sqlfront.Parser.parse* \
   (escape hatch: [@lint.sql_static])"

let applies path = Filename.check_suffix path ".ml"

(* string-SQL entry points of the Exec boundary; the [ast_*] forms take
   Sqlfront.Ast values and need no taint check *)
let exec_sinks = [ "on_conn"; "on_conn_exn"; "raw_on_conn"; "raw_on_conn_exn" ]

let is_sink comps =
  match List.rev comps with
  (* unqualified uses inside the boundary modules themselves
     (Connection's local-open idiom, Exec's typed wrappers) *)
  | [ ("exec_async" | "on_conn_exn" | "raw_on_conn_exn") ] -> true
  | last :: prev :: _ -> (
    match prev with
    | "Connection" -> String.equal last "exec" || String.equal last "exec_async"
    | "Exec" -> List.mem last exec_sinks
    | "Executor" -> Rule.starts_with "run" last
    | "Parser" -> Rule.starts_with "parse" last
    | _ -> false)
  | _ -> false

let is_string_builder comps =
  match List.rev comps with
  | [ "^" ] -> true
  | last :: _ -> List.mem last [ "sprintf"; "ksprintf"; "asprintf" ]
  | [] -> false

let rec is_string_built (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (f, _) -> is_string_builder (Rule.ident_path f)
  | Parsetree.Pexp_constraint (e, _) -> is_string_built e
  | _ -> false

(* Names let-bound (at any depth) to a string-building expression. Coarse —
   one namespace per file — but lint-grade: a false positive is silenced by
   building the statement as an AST, which is the point. *)
let tainted_names (str : Parsetree.structure) =
  let names = Hashtbl.create 8 in
  let super = Ast_iterator.default_iterator in
  let value_binding it (vb : Parsetree.value_binding) =
    (match vb.pvb_pat.ppat_desc with
     | Parsetree.Ppat_var { txt; _ } when is_string_built vb.pvb_expr ->
       Hashtbl.replace names txt ()
     | _ -> ());
    super.Ast_iterator.value_binding it vb
  in
  let it = { super with Ast_iterator.value_binding } in
  it.Ast_iterator.structure it str;
  names

let escape_hatch = "lint.sql_static"

let check ~path (str : Parsetree.structure) =
  let tainted = tainted_names str in
  let is_tainted_arg (e : Parsetree.expression) =
    is_string_built e
    ||
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } ->
      Hashtbl.mem tainted n
    | _ -> false
  in
  let findings = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    if Rule.has_attr escape_hatch e.pexp_attributes then
      () (* annotated: the author asserts the interpolants are static *)
    else begin
      (match e.pexp_desc with
       | Parsetree.Pexp_apply (f, args) when is_sink (Rule.ident_path f) ->
         List.iter
           (fun ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
             if
               is_tainted_arg arg
               && not (Rule.has_attr escape_hatch arg.pexp_attributes)
             then
               findings :=
                 Rule.finding ~id ~file:path ~loc:arg.pexp_loc
                   (Printf.sprintf
                      "string built with sprintf/(^) flows into SQL sink %s; \
                       construct the statement via Sqlfront.Ast (deparse is \
                       the only sanctioned SQL printer) or annotate with \
                       [@lint.sql_static] if every interpolant is an \
                       internally generated identifier"
                      (String.concat "." (Rule.ident_path f)))
                 :: !findings)
           args
       | _ -> ());
      super.Ast_iterator.expr it e
    end
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it str;
  List.rev !findings

let check_tree _ = []

let explain =
  "Interior SQL is built from Sqlfront.Ast values and deparsed in \
   exactly one place; a sprintf- or (^)-built string reaching a SQL \
   sink re-opens the injection hole the executor-AST path closed — \
   hostile gids, shard names, and datum text all re-parse as SQL on \
   the worker. The rule flags sink arguments that are themselves \
   string-building expressions, or identifiers let-bound to one in the \
   same file. Escape hatch: [@lint.sql_static] on an enclosing \
   expression, asserting every interpolant is an internally generated \
   identifier — never data, never anything a client can influence."

let check_program _ = []
