(** L2 determinism: wall-clock and ambient-randomness primitives are banned
    outside [lib/sim/]. Deterministic replay of failure schedules (and
    cross-replica agreement under statement-based replication) depends on
    every time read going through {!Sim.Clock} and every random draw
    through an explicitly seeded [Random.State]. A single
    [Unix.gettimeofday] in a planner is enough to make two replicas of the
    same shard diverge. *)

let id = "L2"
let name = "determinism"

let doc =
  "Unix.gettimeofday/Unix.time/Sys.time/Random.self_init and global-state \
   Random draws are banned outside lib/sim/ (seeded Random.State is legal)"

let applies path =
  Filename.check_suffix path ".ml" && not (Rule.starts_with "lib/sim/" path)

(* Draws on the implicitly shared global PRNG. [Random.State.*] has three
   path components and never matches. *)
let global_random =
  [
    "self_init"; "init"; "full_init"; "bits"; "int"; "full_int"; "int32";
    "int64"; "nativeint"; "float"; "bool"; "bits32"; "bits64"; "get_state";
  ]

let banned = function
  | [ "Unix"; ("gettimeofday" | "time") ] -> true
  | [ "Sys"; "time" ] -> true
  | [ "Random"; f ] -> List.mem f global_random
  | _ -> false

let check ~path (str : Parsetree.structure) =
  let findings = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_ident { txt; _ } ->
       let comps = try Longident.flatten txt with _ -> [] in
       if banned comps then
         findings :=
           Rule.finding ~id ~file:path ~loc:e.pexp_loc
             (Printf.sprintf
                "%s is nondeterministic outside the sim layer; read time \
                 from Sim.Clock and draw randomness from a seeded \
                 Random.State"
                (String.concat "." comps))
           :: !findings
     | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it str;
  List.rev !findings

let check_tree _ = []

let explain =
  "Deterministic replay of failure schedules — and cross-replica \
   agreement under statement-based replication — depends on every time \
   read going through Sim.Clock and every random draw through an \
   explicitly seeded Random.State. A single Unix.gettimeofday in a \
   planner makes two replicas of the same shard diverge, and makes a \
   chaos-harness failure unreproducible. There is no attribute escape \
   hatch: code that genuinely needs ambient time belongs in lib/sim/, \
   behind the clock."

let check_program _ = []
