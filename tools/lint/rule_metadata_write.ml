(** L16 metadata-write discipline: catalog mutations flow through the
    sync layer.

    MX replicates the distributed catalog: every installed node holds
    its own [Metadata.t], kept bit-identical by [Metasync] applying each
    mutation to the origin and every replica in one deterministic order.
    A direct call to a [Metadata] mutator anywhere else updates exactly
    one replica — the other nodes keep planning against stale shard
    maps, their plan caches never invalidate (the synced [version] stops
    advancing in lockstep), and the divergence only surfaces as a
    wrong-node query much later.

    A forward reachability fixpoint marks every function reachable from
    a call-graph root (a function no scanned code calls — the library's
    effective entry points) outside the catalog layer
    ([lib/core/metasync.ml] + [lib/core/metadata.ml]) without passing
    through a [Metasync.*] call — crossing into the sync layer is the
    sanctioned route, so edges into [Metasync] are cut. Any
    [Metadata.<mutator>] site inside a marked function is a finding:
    helpers are allowed to wrap mutators only if the sync layer is
    their sole caller.

    Escape hatch: [[\@lint.metadata_write]] on the call, asserting the
    target catalog is a standalone/scratch instance that no node
    replicates (e.g. a planner what-if copy). *)

let id = "L16"
let name = "metadata-write"

let doc =
  "Metadata mutators (register_*, drop_table, *_placement, \
   replace_shard, renumber_colocation, bump_version) may only run \
   inside the Metasync layer, which fans them out to every node's \
   catalog replica (escape hatch: [@lint.metadata_write])"

let explain =
  "the MX catalog is replicated: each metadata-synced node plans \
   against its own Metadata.t, and Metasync keeps all replicas \
   bit-identical by applying every mutation to the origin and each \
   replica in the same order (id sequences advance in lockstep, and \
   the shared version counter — which validates the distributed plan \
   cache — bumps everywhere at once). One direct Metadata mutator call \
   outside the sync layer silently forks the catalog: the mutated \
   replica disagrees with every other node about shard placement, \
   stale cached plans keep validating on the nodes that missed the \
   bump, and queries route to dropped or moved shards. L16 computes \
   forward reachability from the call-graph roots (functions no \
   scanned code calls — the effective entry points) outside the \
   catalog layer (lib/core/metasync.ml + lib/core/metadata.ml), \
   cutting edges that cross into Metasync (the sanctioned boundary), \
   and flags each reachable Metadata mutator site — so a wrapper \
   helper is legal exactly when the sync layer is its only caller. \
   Escape hatch: \
   [@lint.metadata_write] for mutations of standalone catalogs no \
   node replicates (scratch copies, tests)."

let applies _ = false
let check ~path:_ _ = []
let check_tree _ = []

let catalog_layer_file path =
  String.equal path "lib/core/metasync.ml"
  || String.equal path "lib/core/metadata.ml"

let mutators =
  [
    "bump_version";
    "register_distributed";
    "register_reference";
    "drop_table";
    "mark_placement";
    "update_placement";
    "add_placement";
    "replace_shard";
    "renumber_colocation";
  ]

let is_mutator comps =
  match List.rev comps with
  | last :: prev :: _ ->
    String.equal prev "Metadata" && List.mem last mutators
  | _ -> false

(* the sanctioned boundary: a call into Metasync hands the mutation to
   the sync layer, which owns fan-out to every replica. Matched on the
   resolved target, falling back to the written path. *)
let enters_sync (s : Callgraph.site) =
  match s.Callgraph.s_target with
  | Some { Callgraph.m; _ } -> String.equal m "Metasync"
  | None -> List.exists (String.equal "Metasync") s.Callgraph.s_path

let escape_hatch = "lint.metadata_write"

let in_scope_file path =
  Rule.starts_with "lib/" path && not (catalog_layer_file path)

let check_program (files : (string * Parsetree.structure) list) =
  let g = Callgraph.build files in
  (* call-graph roots: functions nothing in the scanned tree (lib, bin
     AND test) calls — the program's effective entry points. Facts flow
     from these so a helper whose only caller is the sync layer stays
     sanctioned. *)
  let called : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (fn : Callgraph.fn) ->
      List.iter
        (fun (s : Callgraph.site) ->
          match Callgraph.resolved g s with
          | Some { Callgraph.m; v } -> Hashtbl.replace called (m, v) ()
          | None -> ())
        fn.Callgraph.f_sites)
    g.Callgraph.fns;
  let is_entry (fn : Callgraph.fn) =
    (not (catalog_layer_file fn.Callgraph.f_file))
    && not
         (Hashtbl.mem called
            (fn.Callgraph.f_id.Callgraph.m, fn.Callgraph.f_id.Callgraph.v))
  in
  let outside_reachable =
    Dataflow.solve g ~dir:Dataflow.Forward ~bottom:false ~equal:Bool.equal
      ~join:( || ) ~init:is_entry
      ~transfer:(fun ~site ~dep:_ fact -> fact && not (enters_sync site))
  in
  let findings =
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        if
          (not (in_scope_file fn.Callgraph.f_file))
          || not (is_entry fn || outside_reachable fn.Callgraph.f_id)
        then []
        else
          List.filter_map
            (fun (s : Callgraph.site) ->
              if
                is_mutator s.Callgraph.s_path
                && not (List.mem escape_hatch s.Callgraph.s_attrs)
              then
                Some
                  (Rule.finding ~id ~file:fn.Callgraph.f_file
                     ~loc:s.Callgraph.s_loc
                     (Printf.sprintf
                        "%s mutates one catalog replica directly (in %s, \
                         reachable from outside the sync layer) — MX \
                         replicates the catalog, so every mutation must go \
                         through Metasync to reach all node replicas in \
                         lockstep; call the Metasync wrapper, or annotate \
                         [@lint.metadata_write] if this catalog is a \
                         standalone instance no node replicates"
                        (String.concat "." s.Callgraph.s_path)
                        (Callgraph.id_str fn.Callgraph.f_id)))
              else None)
            fn.Callgraph.f_sites)
      g.Callgraph.fns
  in
  List.sort
    (fun (a : Rule.finding) b ->
      compare (a.file, a.line, a.col) (b.file, b.line, b.col))
    findings
