(** L10 transitive-blocking: the interprocedural upgrade of L9.

    L9 checks {e direct} uses of the suspending primitives; this rule
    propagates the fact through the call graph ({!Suspend.facts}): a
    function that transitively reaches [Sched.await] & co. is itself
    suspending, and every reference to it — call or higher-order use —
    must satisfy the same fiber-context discipline (lexical
    with_sched / Sched.run / Sched.spawn scope or a [sched] parameter).

    Direct primitive uses stay L9's findings; L10 reports only calls to
    {e derived} suspending functions, so one defect never double-fires.
    The escape hatch is the same [[\@lint.blocking]] as L9, because it
    means the same thing: a deliberate dual-mode boundary. *)

let id = "L10"
let name = "transitive-blocking"

let doc =
  "calls to functions that transitively reach a suspending primitive \
   must themselves satisfy the fiber-context discipline (escape hatch: \
   [@lint.blocking])"

let explain =
  "A function that calls Sched.await three frames down suspends its \
   caller's fiber exactly as hard as a direct await — but L9's lexical \
   check cannot see through the frames. L10 closes the gap: a backward \
   fixpoint over the whole-program call graph marks every function that \
   reaches a suspending primitive (await / await_result / await_any / \
   join_all / sleep / sleep_until / wait / timed_wait / yield / \
   Connection.await) without an intervening handler (with_sched / \
   Sched.run) or dual-mode boundary, and every reference to a marked \
   function — including passing it as a value — must sit inside a \
   scheduler scope. Escape hatch: [@lint.blocking] on the call site or \
   the callee's binding, meaning the same thing it means for L9: this \
   boundary is dual-mode by design and degrades to a clock advance \
   when no scheduler is running. Functions taking ?sched are treated \
   as dual-mode by construction."

(* per-file/per-tree hooks unused: this is a whole-program rule *)
let applies _ = false
let check ~path:_ _ = []
let check_tree _ = []

let in_scope_file path =
  Rule.starts_with "lib/" path && not (Rule.starts_with "lib/sim/" path)

let check_program (files : (string * Parsetree.structure) list) =
  let g = Callgraph.build files in
  let fact = Suspend.facts g in
  let findings =
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        if
          (not (in_scope_file fn.Callgraph.f_file))
          (* a binding marked [@@lint.blocking] IS the dual-mode
             boundary: its body may reach suspending functions *)
          || List.mem "lint.blocking" fn.Callgraph.f_attrs
        then []
        else
          List.filter_map
            (fun (s : Callgraph.site) ->
              if
                s.Callgraph.s_in_scope
                || Suspend.site_blocking_ok s
                || Suspend.site_is_prim g s (* L9's beat *)
              then None
              else
                match Callgraph.resolved g s with
                | Some tgt when fact tgt ->
                  Some
                    (Rule.finding ~id ~file:fn.Callgraph.f_file
                       ~loc:s.Callgraph.s_loc
                       (Printf.sprintf
                          "%s transitively suspends (%s) but no scheduler \
                           scope is in sight here; run it under with_sched \
                           / Sched.run / Sched.spawn, take a [sched] \
                           parameter, or annotate a deliberate dual-mode \
                           boundary with [@lint.blocking]"
                          (String.concat "." s.Callgraph.s_path)
                          (Suspend.witness g fact tgt)))
                | _ -> None)
            fn.Callgraph.f_sites)
      g.Callgraph.fns
  in
  List.sort
    (fun (a : Rule.finding) b ->
      compare (a.file, a.line, a.col) (b.file, b.line, b.col))
    findings
