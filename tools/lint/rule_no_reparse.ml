(** L15 no-reparse: the cached-execute path never touches the parser.

    The whole point of the prepared-statement plan cache is that an
    [EXECUTE] on the OLTP hot path reuses a memoized AST and deparse
    string — if anything reachable from [Api.execute_prepared] calls
    [Parser.parse*] on the coordinator, the cache is silently paying
    the parse cost it exists to eliminate (and, worse, may diverge from
    the AST the plan was built from). A forward reachability fixpoint
    over the call graph marks everything the cached dispatch can reach
    and flags every parser entry point inside the reachable set.

    The wire boundary is excluded by design: [Connection.exec_ast]
    deparses to SQL and the {e remote} engine re-parses it — exactly
    like a real Citus worker receiving text over libpq. Reachability
    therefore does not propagate through any call into [Connection]:
    what happens past the wire is the remote node's parse, not a
    coordinator re-parse.

    Escape hatch: [[\@lint.reparse]] on the call, asserting the parse
    is off the per-execute path (e.g. a lazily-built, cached artifact). *)

let id = "L15"
let name = "no-reparse"

let doc =
  "Parser.parse* must be unreachable from Api.execute_prepared (the \
   cached-execute path); remote re-parse past the Connection wire \
   boundary is by design (escape hatch: [@lint.reparse])"

let explain =
  "a prepared statement promises parse-once/execute-many: the plan \
   cache memoizes the AST, tier decision, and per-shard deparse at \
   PREPARE/first-EXECUTE, so the hot path only binds parameters and \
   re-prunes the target shard. One Parser.parse* call reachable from \
   Api.execute_prepared re-introduces the very per-call parse the API \
   exists to remove — a silent performance regression the benchmarks \
   would catch late and attribute wrongly — and risks executing an AST \
   that differs from the one the cached plan was validated against. \
   L15 computes forward reachability from Api.execute_prepared over \
   the whole-program call graph, cutting every edge into Connection \
   (the wire boundary: Connection.exec_ast deparses to SQL and the \
   remote engine re-parses by design, like a Citus worker receiving \
   text over libpq), and flags any reachable Parser.parse* site. \
   Escape hatch: [@lint.reparse] for parses provably off the \
   per-execute path."

let applies _ = false
let check ~path:_ _ = []
let check_tree _ = []

let is_entry (fn : Callgraph.fn) =
  let { Callgraph.m; v } = fn.Callgraph.f_id in
  String.equal m "Api" && String.equal v "execute_prepared"

let is_parse comps =
  match List.rev comps with
  | last :: prev :: _ ->
    String.equal prev "Parser" && Rule.starts_with "parse" last
  | _ -> false

(* the wire boundary: a call into Connection ships deparsed SQL to the
   remote engine, whose parse is its own business, not a coordinator
   re-parse. Matched on the resolved target (local opens leave the
   written path bare), falling back to the written path. *)
let crosses_wire (s : Callgraph.site) =
  match s.Callgraph.s_target with
  | Some { Callgraph.m; _ } -> String.equal m "Connection"
  | None -> List.exists (String.equal "Connection") s.Callgraph.s_path

let escape_hatch = "lint.reparse"

let in_scope_file path =
  Rule.starts_with "lib/" path && not (Rule.starts_with "lib/sim/" path)

let check_program (files : (string * Parsetree.structure) list) =
  let g = Callgraph.build files in
  let reachable =
    Dataflow.solve g ~dir:Dataflow.Forward ~bottom:false ~equal:Bool.equal
      ~join:( || ) ~init:is_entry
      ~transfer:(fun ~site ~dep:_ fact -> fact && not (crosses_wire site))
  in
  let findings =
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        if
          (not (in_scope_file fn.Callgraph.f_file))
          || not (is_entry fn || reachable fn.Callgraph.f_id)
        then []
        else
          List.filter_map
            (fun (s : Callgraph.site) ->
              if
                is_parse s.Callgraph.s_path
                && not (List.mem escape_hatch s.Callgraph.s_attrs)
              then
                Some
                  (Rule.finding ~id ~file:fn.Callgraph.f_file
                     ~loc:s.Callgraph.s_loc
                     (Printf.sprintf
                        "%s is reachable from the cached-execute path (via \
                         %s) — a prepared EXECUTE must bind into the \
                         memoized AST, never re-parse on the coordinator; \
                         move the parse to PREPARE time, or annotate \
                         [@lint.reparse] if it is provably off the \
                         per-execute path"
                        (String.concat "." s.Callgraph.s_path)
                        (Callgraph.id_str fn.Callgraph.f_id)))
              else None)
            fn.Callgraph.f_sites)
      g.Callgraph.fns
  in
  List.sort
    (fun (a : Rule.finding) b ->
      compare (a.file, a.line, a.col) (b.file, b.line, b.col))
    findings
