(** L6 twopc-state-machine: the 2PC driver must handle every
    [State.session_state] transition. Concretely, in [twopc.ml]:

    - all four protocol entry points exist: [pre_commit], [post_commit],
      [on_abort], [recover];
    - [pre_commit], [post_commit] and [on_abort] each (transitively)
      assign the [prepared] field — the prepared-gid list is the 2PC
      state machine's core register, and an entry point that never
      touches it has lost a transition (e.g. an abort path that forgets
      prepared transactions leaves them holding locks forever);
    - [post_commit] and [on_abort] (transitively) clear [txn_conns] and
      [dist_xids] — a transaction end that leaks either keeps dead
      connections in the next transaction and stale entries in the
      distributed-deadlock registry;
    - [recover] references both resolutions, [Commit_prepared] {e and}
      [Rollback_prepared] — recovery that can only commit (or only roll
      back) cannot drain the other half of the prepared-transaction
      space.

    "Transitively" means through calls to other top-level functions of
    the same file ([cleanup_session_txn_state] etc.), computed as a
    fixpoint over the local call graph. *)

let id = "L6"
let name = "twopc-state-machine"

let doc =
  "2PC state machine exhaustiveness: pre_commit/post_commit/on_abort/recover \
   must exist, update the session_state fields they own, and recover must \
   handle both COMMIT PREPARED and ROLLBACK PREPARED"

let applies path = String.equal (Filename.basename path) "twopc.ml"

(* (name, binding) for every top-level [let] in the file *)
let top_bindings (str : Parsetree.structure) =
  List.concat_map
    (fun (si : Parsetree.structure_item) ->
      match si.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
        List.filter_map
          (fun (vb : Parsetree.value_binding) ->
            match vb.Parsetree.pvb_pat.ppat_desc with
            | Parsetree.Ppat_var { txt; _ } -> Some (txt, vb)
            | _ -> None)
          vbs
      | _ -> [])
    str

(* last components of record fields assigned anywhere in [e]
   (e.g. [st.State.prepared <- []] yields "prepared") *)
let fields_written (e : Parsetree.expression) =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_setfield (_, { txt; _ }, _) ->
       (try acc := Longident.last txt :: !acc with _ -> ())
     | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.expr it e;
  !acc

(* unqualified identifiers referencing other top-level bindings *)
let local_calls names (e : Parsetree.expression) =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_ident { txt = Longident.Lident n; _ }
       when List.mem n names ->
       acc := n :: !acc
     | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.expr it e;
  !acc

(* Does [fn] write [field], directly or through calls to other top-level
   functions? Fixpoint over the local call graph. *)
let writes_transitively bindings field fn =
  let names = List.map fst bindings in
  let direct =
    List.map
      (fun (n, (vb : Parsetree.value_binding)) ->
        (n, List.mem field (fields_written vb.Parsetree.pvb_expr)))
      bindings
  in
  let writes = Hashtbl.create 16 in
  List.iter (fun (n, w) -> Hashtbl.replace writes n w) direct;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, (vb : Parsetree.value_binding)) ->
        if not (Hashtbl.find writes n) then
          let callees = local_calls names vb.Parsetree.pvb_expr in
          if
            List.exists
              (fun c -> (not (String.equal c n)) && Hashtbl.find writes c)
              callees
          then begin
            Hashtbl.replace writes n true;
            changed := true
          end)
      bindings
  done;
  match Hashtbl.find_opt writes fn with Some w -> w | None -> false

(* Does [e] mention the given 2PC resolution, as the AST constructor
   ([Commit_prepared]) or the manager primitive ([commit_prepared])? *)
let mentions_resolution (e : Parsetree.expression) ~constr ~fn =
  Rule.expr_exists
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_construct ({ txt; _ }, _) ->
        (try String.equal (Longident.last txt) constr with _ -> false)
      | Parsetree.Pexp_ident _ ->
        (match List.rev (Rule.ident_path e) with
         | last :: _ -> String.equal last fn
         | [] -> false)
      | _ -> false)
    e

let check ~path (str : Parsetree.structure) =
  let bindings = top_bindings str in
  let file_loc =
    match str with
    | (si : Parsetree.structure_item) :: _ -> si.Parsetree.pstr_loc
    | [] -> Location.none
  in
  let findings = ref [] in
  let add ~loc msg = findings := Rule.finding ~id ~file:path ~loc msg :: !findings in
  let entry_points = [ "pre_commit"; "post_commit"; "on_abort"; "recover" ] in
  List.iter
    (fun fn ->
      if not (List.mem_assoc fn bindings) then
        add ~loc:file_loc
          (Printf.sprintf
             "2PC entry point %s is missing: every session_state transition \
              (commit, abort, recovery) needs its handler"
             fn))
    entry_points;
  let require_write fn field =
    match List.assoc_opt fn bindings with
    | None -> ()
    | Some vb ->
      if not (writes_transitively bindings field fn) then
        add ~loc:vb.Parsetree.pvb_loc
          (Printf.sprintf
             "%s never updates session_state.%s (directly or via a helper): \
              a 2PC transition that does not move this field loses protocol \
              state"
             fn field)
  in
  List.iter (fun fn -> require_write fn "prepared") [ "pre_commit"; "post_commit"; "on_abort" ];
  List.iter
    (fun fn ->
      require_write fn "txn_conns";
      require_write fn "dist_xids")
    [ "post_commit"; "on_abort" ];
  (match List.assoc_opt "recover" bindings with
   | None -> ()
   | Some vb ->
     let body = vb.Parsetree.pvb_expr in
     if
       not
         (mentions_resolution body ~constr:"Commit_prepared"
            ~fn:"commit_prepared")
     then
       add ~loc:vb.Parsetree.pvb_loc
         "recover never issues COMMIT PREPARED: prepared transactions whose \
          coordinator committed can never be resolved";
     if
       not
         (mentions_resolution body ~constr:"Rollback_prepared"
            ~fn:"rollback_prepared")
     then
       add ~loc:vb.Parsetree.pvb_loc
         "recover never issues ROLLBACK PREPARED: prepared transactions whose \
          coordinator aborted can never be resolved");
  List.rev !findings

let check_tree _ = []

let explain =
  "The prepared-gid list is the 2PC state machine's core register; an \
   entry point that never touches it has lost a transition — an abort \
   path that forgets prepared transactions leaves them holding locks \
   forever, a transaction end that leaks txn_conns reuses dead \
   connections in the next transaction. The rule checks \
   pre_commit/post_commit/on_abort/recover all exist, that each \
   (transitively, through same-file calls) updates the session_state \
   fields it owns, and that recover references both Commit_prepared \
   and Rollback_prepared — recovery that can only commit cannot drain \
   the other half of the prepared-transaction space. No attribute \
   escape hatch: the state machine is the contract."

let check_program _ = []
