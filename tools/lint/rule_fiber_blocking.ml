(** L9 fiber-blocking: the scheduler's suspending primitives
    ([Sim.Sched.await] / [await_result] / [await_any] / [join_all] /
    [sleep] / [sleep_until] / [wait] / [timed_wait] / [yield]) and the
    deadline-aware [Cluster.Connection.await] must be called from code
    that is lexically inside a scheduler scope — a [State.with_sched] /
    [Sim.Sched.run] body, a [Sim.Sched.spawn] thunk, or a function that
    receives the scheduler as a [sched] parameter.

    Outside such a scope the [Sched] primitives perform effects no
    handler catches (a crash at runtime), and a bare [Connection.await]
    silently degrades to a serializing clock advance — it waits out the
    very stall the deadline/hedging machinery exists to escape, invisible
    to cancellation. The escape hatch is [[@lint.blocking]] on an
    enclosing expression, reserved for the boundary primitives that
    support both modes by design (e.g. [Exec.on_conn_exn], which also
    serves setup and maintenance code that runs without a scheduler). *)

let id = "L9"
let name = "fiber-blocking"

let doc =
  "Sim.Sched suspending calls and Connection.await must run inside a \
   with_sched / Sched.run / Sched.spawn scope or a function taking a \
   [sched] parameter (escape hatch: [@lint.blocking])"

let applies path =
  Filename.check_suffix path ".ml"
  && Rule.starts_with "lib/" path
  && not (Rule.starts_with "lib/sim/" path)

let sched_blocking =
  [
    "await";
    "await_result";
    "await_any";
    "join_all";
    "sleep";
    "sleep_until";
    "wait";
    "timed_wait";
    "yield";
  ]

let is_blocking_call comps =
  match List.rev comps with
  | last :: prev :: _ ->
    (String.equal prev "Sched" && List.mem last sched_blocking)
    || (String.equal prev "Connection" && String.equal last "await")
  | _ -> false

(* Applications whose argument expressions run with a scheduler in hand:
   [State.with_sched t (fun sched -> ...)], [Sim.Sched.run ... f] and
   [Sim.Sched.spawn sched ... (fun () -> ...)] (a spawned thunk runs as a
   fiber of the scheduler that spawned it). *)
let grants_scope comps =
  match List.rev comps with
  | last :: rest -> (
    String.equal last "with_sched"
    ||
    match rest with
    | prev :: _ ->
      String.equal prev "Sched"
      && (String.equal last "run" || String.equal last "spawn")
    | [] -> false)
  | [] -> false

let is_sched_param (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } ->
    String.equal txt "sched" || String.equal txt "_sched"
  | Parsetree.Ppat_constraint
      ({ ppat_desc = Parsetree.Ppat_var { txt; _ }; _ }, _) ->
    String.equal txt "sched"
  | _ -> false

let escape_hatch = "lint.blocking"

let check ~path (str : Parsetree.structure) =
  let findings = ref [] in
  let in_scope = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    if Rule.has_attr escape_hatch e.Parsetree.pexp_attributes then
      () (* annotated boundary primitive: dual-mode by design *)
    else begin
      (match e.Parsetree.pexp_desc with
       | Parsetree.Pexp_apply (f, _) when is_blocking_call (Rule.ident_path f)
         ->
         if not !in_scope then
           findings :=
             Rule.finding ~id ~file:path ~loc:e.pexp_loc
               (Printf.sprintf
                  "%s suspends a fiber but no scheduler scope is in sight \
                   (no enclosing with_sched / Sched.run / Sched.spawn or \
                   [sched] parameter); outside a scope this crashes or \
                   silently serializes — pass the scheduler in, or annotate \
                   a deliberate dual-mode boundary with [@lint.blocking]"
                  (String.concat "." (Rule.ident_path f)))
             :: !findings
       | _ -> ());
      let saved = !in_scope in
      (match e.Parsetree.pexp_desc with
       | Parsetree.Pexp_fun (_, _, pat, _) when is_sched_param pat ->
         in_scope := true
       | Parsetree.Pexp_apply (f, _) when grants_scope (Rule.ident_path f) ->
         in_scope := true
       | _ -> ());
      super.Ast_iterator.expr it e;
      in_scope := saved
    end
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it str;
  List.rev !findings

let check_tree _ = []

let explain =
  "Outside a scheduler scope the Sched primitives perform effects no \
   handler catches — a crash at runtime — and a bare Connection.await \
   silently degrades to a serializing clock advance: it waits out the \
   very stall the deadline/hedging machinery exists to escape, \
   invisible to cancellation. Suspending calls must therefore sit \
   lexically inside a with_sched / Sched.run body, a Sched.spawn \
   thunk, or a function that receives the scheduler as a [sched] \
   parameter. Escape hatch: [@lint.blocking] on an enclosing \
   expression, reserved for boundary primitives that support both \
   modes by design (e.g. Exec.on_conn_exn, which also serves setup and \
   maintenance code that runs without a scheduler). See L10 for the \
   transitive version of this rule."

let check_program _ = []
