(** L14 snapshot-discipline: fragment dispatches on the statement path
    must thread the session's snapshot token.

    The distributed-snapshot design (DESIGN.md §4h) hangs on one
    invariant: every fragment of a statement executes at the {e same}
    visibility — the per-statement snapshot token computed once in
    [Adaptive_executor.execute] from [citus.consistency]. A dispatch
    site that omits the token silently executes at latest visibility,
    and a multi-shard read becomes torn again exactly when the knob
    promises it cannot be.

    The rule marks everything reachable from [Adaptive_executor.execute]
    (forward fixpoint over the whole-program call graph, like L12) and
    requires every reachable call to the planned-fragment dispatch
    primitives — [Exec.ast_on_conn_exn] / [Exec.ast_on_conn] — to pass a
    [~snapshot]/[?snapshot] argument. Passing [?snapshot:None] (a write,
    or eventual consistency) satisfies the rule: the point is that the
    site made a visibility decision, not that it always pins one.

    Escape hatch: [[\@lint.latest]] on the dispatch, asserting the
    statement is deliberately executed at latest visibility — 2PC
    resolution statements (COMMIT/ROLLBACK PREPARED fired by
    [Twopc.resolve_in_doubt]) are the canonical case: they are not
    reads, and stamping them with a reader's snapshot would be
    meaningless. *)

let id = "L14"
let name = "snapshot-discipline"

let doc =
  "Exec.ast_on_conn(_exn) reachable from Adaptive_executor.execute must \
   pass ?snapshot (escape hatch: [@lint.latest])"

let explain =
  "citus.consistency = snapshot promises that every fragment of a \
   multi-shard read observes one cluster-wide HLC cut. That promise is \
   only as strong as its weakest dispatch: one fragment shipped without \
   the statement's snapshot token executes at latest visibility and can \
   observe a distributed transaction the other fragments do not — a \
   torn read, re-introduced silently by a refactor that forgets to \
   thread one argument. L14 computes forward reachability from \
   Adaptive_executor.execute over the whole-program call graph (like \
   L12) and requires every reachable call to the planned-fragment \
   dispatch primitives (Exec.ast_on_conn_exn / Exec.ast_on_conn) to \
   pass ?snapshot — passing None is fine, omitting the argument is \
   not. Escape hatch: [@lint.latest] on the dispatch, for statements \
   that deliberately execute at latest visibility (2PC resolution \
   statements such as COMMIT PREPARED are not reads and take no \
   snapshot)."

let applies _ = false
let check ~path:_ _ = []
let check_tree _ = []

let is_entry (fn : Callgraph.fn) =
  let { Callgraph.m; v } = fn.Callgraph.f_id in
  String.equal m "Adaptive_executor" && String.equal v "execute"

(* the planned-fragment dispatch primitives; the string forms
   ([on_conn_exn]) carry control statements (BEGIN, SET), never planned
   fragments, so they are out of scope *)
let is_dispatch (fn_id : Callgraph.fn_id) =
  String.equal fn_id.Callgraph.m "Exec"
  && (String.equal fn_id.Callgraph.v "ast_on_conn_exn"
      || String.equal fn_id.Callgraph.v "ast_on_conn")

let escape_hatch = "lint.latest"

let in_scope_file path =
  Rule.starts_with "lib/" path && not (Rule.starts_with "lib/sim/" path)

let check_program (files : (string * Parsetree.structure) list) =
  let g = Callgraph.build files in
  let reachable =
    Dataflow.solve g ~dir:Dataflow.Forward ~bottom:false ~equal:Bool.equal
      ~join:( || ) ~init:is_entry
      ~transfer:(fun ~site:_ ~dep:_ fact -> fact)
  in
  let findings =
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        if
          (not (in_scope_file fn.Callgraph.f_file))
          || not (is_entry fn || reachable fn.Callgraph.f_id)
        then []
        else
          List.filter_map
            (fun (s : Callgraph.site) ->
              let target_is_dispatch =
                match Callgraph.resolved g s with
                | Some tgt -> is_dispatch tgt
                | None -> false
              in
              if
                target_is_dispatch
                && (not (List.mem escape_hatch s.Callgraph.s_attrs))
                &&
                match s.Callgraph.s_kind with
                | Callgraph.Call { labels } ->
                  not (List.mem "snapshot" labels)
                | Callgraph.Value -> true
              then
                Some
                  (Rule.finding ~id ~file:fn.Callgraph.f_file
                     ~loc:s.Callgraph.s_loc
                     (Printf.sprintf
                        "%s dispatches a planned fragment on the statement \
                         path (via %s) without threading ?snapshot — the \
                         fragment executes at latest visibility and can \
                         tear a snapshot-consistent read; pass the \
                         statement's snapshot token (None is fine for \
                         writes), or annotate [@lint.latest] if the \
                         statement deliberately executes at latest \
                         visibility"
                        (String.concat "." s.Callgraph.s_path)
                        (Callgraph.id_str fn.Callgraph.f_id)))
              else None)
            fn.Callgraph.f_sites)
      g.Callgraph.fns
  in
  List.sort
    (fun (a : Rule.finding) b ->
      compare (a.file, a.line, a.col) (b.file, b.line, b.col))
    findings
