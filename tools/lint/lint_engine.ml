(** Driving machinery for citus_lint: source scanning, parsing, baseline
    handling, and running the rule table over a file set. Kept separate
    from the executable so the test suite can run rules against inline
    fixture sources. *)

(* --- parsing --- *)

let parse_impl ~path (source : string) : Parsetree.structure =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- source scanning --- *)

let rec scan_path acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if
          String.length entry > 0
          && entry.[0] <> '.'
          && not (String.equal entry "_build")
        then scan_path acc (Filename.concat path entry)
        else acc)
      acc
      (Sys.readdir path)
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

(** All [.ml]/[.mli] files under [roots], sorted, with '/'-separated
    relative paths as given. *)
let scan roots =
  List.sort String.compare (List.fold_left scan_path [] roots)

(* --- baseline --- *)

(** One grandfathered finding: rule id, file, line. The baseline may only
    ever shrink; an entry that no longer matches a live finding is itself
    an error so stale grandfathering cannot linger. *)
type baseline_entry = { b_rule : string; b_file : string; b_line : int }

(* Minimal s-expression reader: atoms, double-quoted strings, ( ), and
   ';' line comments — all this file format needs. *)
type sexp = Atom of string | List of sexp list

let parse_sexps (src : string) : sexp list =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | Some ';' ->
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done;
      skip_ws ()
    | _ -> ()
  in
  let atom () =
    let start = !pos in
    while
      !pos < n
      && not
           (match src.[!pos] with
            | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> true
            | _ -> false)
    do
      incr pos
    done;
    Atom (String.sub src start (!pos - start))
  in
  let quoted () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then failwith "unterminated string in baseline"
      else
        match src.[!pos] with
        | '"' -> incr pos
        | '\\' when !pos + 1 < n ->
          Buffer.add_char buf src.[!pos + 1];
          pos := !pos + 2;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let rec sexp () =
    skip_ws ();
    match peek () with
    | Some '(' ->
      incr pos;
      let items = ref [] in
      let rec items_loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> incr pos
        | Some _ ->
          items := sexp () :: !items;
          items_loop ()
        | None -> failwith "unterminated list in baseline"
      in
      items_loop ();
      List (List.rev !items)
    | Some '"' -> quoted ()
    | Some _ -> atom ()
    | None -> failwith "expected s-expression"
  in
  let rec top acc =
    skip_ws ();
    if !pos >= n then List.rev acc else top (sexp () :: acc)
  in
  top []

let load_baseline path : baseline_entry list =
  if not (Sys.file_exists path) then []
  else
    parse_sexps (read_file path)
    |> List.map (function
         | List [ Atom rule; Atom file; Atom line ] -> (
           match int_of_string_opt line with
           | Some l -> { b_rule = rule; b_file = file; b_line = l }
           | None ->
             failwith
               (Printf.sprintf "baseline %s: bad line number %S" path line))
         | _ ->
           failwith
             (Printf.sprintf
                "baseline %s: each entry must be (RULE FILE LINE)" path))

(* --- running --- *)

type outcome = {
  findings : Rule.finding list;  (** live, non-grandfathered findings *)
  stale : baseline_entry list;  (** baseline entries matching nothing *)
  parse_errors : (string * string) list;  (** file, message *)
}

let matches (b : baseline_entry) (f : Rule.finding) =
  String.equal b.b_rule f.rule_id
  && String.equal b.b_file f.file
  && b.b_line = f.line

(** Run [rules] over [files] (path, lazily read+parsed). Tree rules see
    every path; per-file rules see each parsed [.ml]. *)
let run ?(baseline = []) ~(rules : Rule.t list) (paths : string list) : outcome
    =
  let parse_errors = ref [] in
  let parsed =
    List.filter_map
      (fun path ->
        if Filename.check_suffix path ".ml" then
          match parse_impl ~path (read_file path) with
          | str -> Some (path, str)
          | exception exn ->
            parse_errors := (path, Printexc.to_string exn) :: !parse_errors;
            None
        else None)
      paths
  in
  let all =
    List.concat_map
      (fun (rule : Rule.t) ->
        let module R = (val rule) in
        R.check_tree paths
        @ R.check_program parsed
        @ List.concat_map
            (fun (path, str) ->
              if R.applies path then R.check ~path str else [])
            parsed)
      rules
  in
  let live, grandfathered =
    List.partition (fun f -> not (List.exists (fun b -> matches b f) baseline)) all
  in
  let stale =
    List.filter
      (fun b -> not (List.exists (fun f -> matches b f) grandfathered))
      baseline
  in
  { findings = live; stale; parse_errors = List.rev !parse_errors }

(** Run rules directly over in-memory sources [(path, source)] — the test
    harness entry point. Tree rules see the fixture paths only. *)
let run_sources ~(rules : Rule.t list) (sources : (string * string) list) :
    Rule.finding list =
  let parsed =
    List.map (fun (path, src) -> (path, parse_impl ~path src)) sources
  in
  List.concat_map
    (fun (rule : Rule.t) ->
      let module R = (val rule) in
      R.check_tree (List.map fst sources)
      @ R.check_program parsed
      @ List.concat_map
          (fun (path, str) -> if R.applies path then R.check ~path str else [])
          parsed)
    rules

(* --- machine-readable output --- *)

let sexp_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char buf '\\'; Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Canonical one-line sexp for a finding — what [--sexp] and the
    determinism guard emit. Field order is fixed; output over a sorted
    finding list is bit-reproducible by construction. *)
let finding_sexp (f : Rule.finding) =
  Printf.sprintf
    "((rule %s) (file \"%s\") (line %d) (col %d) (message \"%s\"))"
    f.Rule.rule_id (sexp_escape f.Rule.file) f.Rule.line f.Rule.col
    (sexp_escape f.Rule.message)

(** The fixed ordering every emitter uses: file, then line, then rule. *)
let compare_findings (a : Rule.finding) (b : Rule.finding) =
  match String.compare a.Rule.file b.Rule.file with
  | 0 -> (
    match Int.compare a.Rule.line b.Rule.line with
    | 0 -> String.compare a.Rule.rule_id b.Rule.rule_id
    | c -> c)
  | c -> c
