(** Shared surface of a lint rule.

    A rule is a module (first-class, collected in {!Registry.all}) that
    inspects either one parsed implementation at a time ([check]) or the
    whole scanned file set at once ([check_tree], for rules about files
    rather than syntax, e.g. interface coverage). Rules are pure: they
    return findings and never print or exit. *)

type finding = {
  rule_id : string;
  file : string;  (** repo-relative, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, like the compiler's own locations *)
  message : string;
}

module type S = sig
  val id : string
  (** stable identifier, e.g. "L1"; baselines and [--rule] use it *)

  val name : string
  (** short kebab-case name, e.g. "sql-injection" *)

  val doc : string
  (** one-line description for [--list-rules] *)

  val explain : string
  (** paragraph for [--explain]: the rationale (what bug class this
      catches and why it matters here) and the escape hatch *)

  val applies : string -> bool
  (** does this rule look at the given [.ml] path at all? *)

  val check : path:string -> Parsetree.structure -> finding list
  (** per-file syntactic check; called only when [applies path] *)

  val check_tree : string list -> finding list
  (** whole-tree check over every scanned path (both [.ml] and [.mli]);
      called once per run *)

  val check_program : (string * Parsetree.structure) list -> finding list
  (** whole-program check over every parsed [.ml] at once — the entry
      point for interprocedural rules (call graph + fixpoint); called
      once per run with files in sorted-path order *)
end

type t = (module S)

(* --- helpers shared by the rule implementations --- *)

let finding ~id ~file ~(loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule_id = id;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

(** Flattened module path of an identifier: [Cluster.Connection.exec] ->
    [["Cluster"; "Connection"; "exec"]]. [Lapply] cannot appear in value
    identifiers we care about; it flattens to []. *)
let ident_path (e : Parsetree.expression) : string list =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } ->
    (try Longident.flatten txt with _ -> [])
  | _ -> []

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> String.equal a.attr_name.txt name)
    attrs

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(** [expr_exists p e] — does any subexpression of [e] satisfy [p]? *)
let expr_exists (p : Parsetree.expression -> bool) (e : Parsetree.expression) =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr it e =
    if p e then found := true;
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.expr it e;
  !found
