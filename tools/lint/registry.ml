(** The rule table. Adding a rule is: write a module implementing
    {!Rule.S} (~50 LoC for an AST rule), list it here. *)

let all : Rule.t list =
  [
    (module Rule_sql_injection);
    (module Rule_determinism);
    (module Rule_exception_hygiene);
    (module Rule_mli_coverage);
    (module Rule_no_catch_all);
    (module Rule_twopc_state);
    (module Rule_lock_order);
    (module Rule_span_conservation);
    (module Rule_fiber_blocking);
    (module Rule_transitive_blocking);
    (module Rule_cancel_safety);
    (module Rule_deadline);
    (module Rule_metric_registry);
    (module Rule_snapshot_discipline);
    (module Rule_no_reparse);
    (module Rule_metadata_write);
  ]

let find id =
  List.find_opt
    (fun (rule : Rule.t) ->
      let module R = (val rule) in
      String.equal R.id id || String.equal R.name id)
    all
