(** Shared suspension analysis: which functions can park the calling
    fiber on the cooperative scheduler?

    The ground truth is the set of suspending primitives ([Sched.await],
    [sleep], [wait], … and [Connection.await]); everything else is
    derived by a backward fixpoint over the call graph: a function is
    suspending iff it contains a live suspending site — a primitive, or
    a call to a suspending function — whose suspension escapes the
    function:

    - a [with_sched] / [Sched.run] application installs the effect
      handler itself, so suspension inside its arguments never reaches
      this function's caller ([s_stopped]);
    - a nested [fun sched -> ...] closure suspends whoever eventually
      runs it, not the function that builds it ([s_stopped] as well —
      the invocation edge, if visible, carries the fact instead);
    - an explicit [[\@lint.blocking]] on the site or the binding marks a
      deliberate dual-mode boundary (degrades to clock-advance without a
      scheduler) and is trusted, exactly as L9 trusts it;
    - a function taking [?sched] is dual-mode by construction and never
      propagates the fact to callers;
    - [lib/sim] is the scheduler's own implementation: opaque — only
      its exported primitives count, never its internals. *)

let suspending_prims =
  [ "await"; "await_result"; "await_any"; "join_all"; "sleep"; "sleep_until";
    "wait"; "timed_wait"; "yield" ]

(* Match on the last two components: [Sim.Sched.await], [Sched.await],
   and [Cluster.Connection.await] all qualify. *)
let path_is_prim comps =
  match List.rev comps with
  | last :: prev :: _ ->
    (String.equal prev "Sched" && List.mem last suspending_prims)
    || (String.equal prev "Connection" && String.equal last "await")
  | _ -> false

(** Is this site a direct use of a suspending primitive? Checked on the
    raw path {e and} on the resolved target, so an unqualified [await]
    inside connection.ml itself (resolving to [Connection.await]) counts
    the same as the qualified form a caller writes. *)
let site_is_prim (g : Callgraph.t) (s : Callgraph.site) =
  path_is_prim s.Callgraph.s_path
  ||
  match Callgraph.resolved g s with
  | Some { Callgraph.m; v } -> path_is_prim [ m; v ]
  | None -> false

let in_sim (fn : Callgraph.fn) =
  Rule.starts_with "lib/sim/" fn.Callgraph.f_file

let dual_mode (fn : Callgraph.fn) =
  fn.Callgraph.f_opt_sched
  || List.mem "lint.blocking" fn.Callgraph.f_attrs

let site_blocking_ok (s : Callgraph.site) =
  List.mem "lint.blocking" s.Callgraph.s_attrs

(** [facts g] — the suspension fact per function id, via backward
    fixpoint. The result is memoized inside the returned closure. *)
let facts (g : Callgraph.t) : Callgraph.fn_id -> bool =
  let raw =
    Dataflow.solve g ~dir:Dataflow.Backward ~bottom:false ~equal:Bool.equal
      ~join:( || )
      ~init:(fun fn ->
        (not (in_sim fn))
        && (not (dual_mode fn))
        && List.exists
             (fun (s : Callgraph.site) ->
               site_is_prim g s
               && (not s.Callgraph.s_stopped)
               && not (site_blocking_ok s))
             fn.Callgraph.f_sites)
      ~transfer:(fun ~site ~dep fact ->
        if
          site.Callgraph.s_stopped
          || site_blocking_ok site
          || in_sim dep || dual_mode dep
          (* calls into the primitives are counted by [init], not as
             edges — Sched.run etc. are not suspending *)
          || site_is_prim g site
        then false
        else fact)
  in
  fun id ->
    (* a dual-mode or sim-internal function never exports the fact,
       whatever its body reaches *)
    match Callgraph.find g id with
    | [] -> false
    | fns -> raw id && not (List.exists (fun f -> in_sim f || dual_mode f) fns)

(** A short witness path "f -> g -> Sched.await" from [id] down to a
    suspending primitive, for finding messages. Breadth-first so the
    shortest chain wins; deterministic because sites are in source
    order. *)
let witness (g : Callgraph.t) (fact : Callgraph.fn_id -> bool)
    (id : Callgraph.fn_id) : string =
  let seen : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.push (id, [ Callgraph.id_str id ]) q;
  let result = ref (Callgraph.id_str id) in
  (try
     while not (Queue.is_empty q) do
       let cur, path = Queue.pop q in
       let k = (cur.Callgraph.m, cur.Callgraph.v) in
       if not (Hashtbl.mem seen k) then begin
         Hashtbl.replace seen k ();
         List.iter
           (fun (fn : Callgraph.fn) ->
             List.iter
               (fun (s : Callgraph.site) ->
                 if
                   (not s.Callgraph.s_stopped) && not (site_blocking_ok s)
                 then
                   if site_is_prim g s then begin
                     result :=
                       String.concat " -> "
                         (List.rev
                            (String.concat "." s.Callgraph.s_path :: path));
                     raise Exit
                   end
                   else
                     match Callgraph.resolved g s with
                     | Some tgt when fact tgt ->
                       Queue.push
                         (tgt, Callgraph.id_str tgt :: path)
                         q
                     | _ -> ())
               fn.Callgraph.f_sites)
           (Callgraph.find g cur)
       end
     done
   with Exit -> ());
  !result
