(** L7 lock-order: lock-ordering discipline across
    [Txn.Manager]/[Txn.Lock]/[Deadlock].

    Two checks, both syntactic:

    - {b ordering}: within one top-level function, a coarse
      [Txn.Lock.Table] acquisition must not appear after a fine
      [Txn.Lock.Row] acquisition. All code that takes both levels must
      take them coarse-to-fine; an inverted pair in two concurrent
      sessions is a deadlock the distributed detector then has to break
      by killing a transaction — the discipline keeps same-statement
      lock acquisition cycle-free by construction. Both direct
      [Txn.Lock.acquire] calls and wrappers (any [acquire*] function
      taking a [Table]/[Row] constructor argument) count.

    - {b blocked handling}: the result of a direct [Txn.Lock.acquire]
      must be scrutinised by a [match] with an explicit
      [Txn.Lock.Blocked] case. [Blocked] carries the conflicting
      holders that feed [Would_block] and the deadlock detector's
      wait-for edges; ignoring the outcome (or hiding it under a
      wildcard) silently drops the wait edge and the retry. *)

let id = "L7"
let name = "lock-order"

let doc =
  "lock-ordering discipline: acquire Table locks before Row locks within a \
   function, and match Txn.Lock.acquire against an explicit Blocked case"

(* Production code only: tests assert directly on acquire outcomes
   (comparing [Granted]/[Blocked] values), which is not a discipline
   violation. *)
let applies path =
  Filename.check_suffix path ".ml" && not (Rule.starts_with "test/" path)

(* [Txn.Lock.Table]/[Txn.Lock.Row] (or [Lock.Table]/[Lock.Row]) target
   constructors appearing anywhere in [e] *)
let lock_target_kinds (e : Parsetree.expression) =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_construct ({ txt; _ }, _) ->
       let path = try Longident.flatten txt with _ -> [] in
       (match List.rev path with
        | last :: rest when List.mem "Lock" rest ->
          if String.equal last "Table" then acc := `Table :: !acc
          else if String.equal last "Row" then acc := `Row :: !acc
        | _ -> ())
     | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.expr it e;
  !acc

let is_acquire_fn (f : Parsetree.expression) =
  match List.rev (Rule.ident_path f) with
  | last :: _ -> Rule.starts_with "acquire" last
  | [] -> false

let is_direct_acquire (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (f, _) ->
    (match List.rev (Rule.ident_path f) with
     | "acquire" :: rest -> List.mem "Lock" rest
     | _ -> false)
  | _ -> false

(* acquisition events (location + Table/Row level, when a target
   constructor is visible at the call site) in [e], in source order *)
let acquisitions (e : Parsetree.expression) =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_apply (f, args) when is_acquire_fn f ->
       let kinds =
         List.concat_map (fun (_, a) -> lock_target_kinds a) args
       in
       (match kinds with
        | k :: _ -> acc := (e.Parsetree.pexp_loc, k) :: !acc
        | [] -> ())
     | _ -> ());
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.expr it e;
  List.sort
    (fun ((l1 : Location.t), _) ((l2 : Location.t), _) ->
      compare l1.Location.loc_start.Lexing.pos_cnum
        l2.Location.loc_start.Lexing.pos_cnum)
    (List.rev !acc)

let pattern_mentions_blocked (p : Parsetree.pattern) =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let pat it (p : Parsetree.pattern) =
    (match p.Parsetree.ppat_desc with
     | Parsetree.Ppat_construct ({ txt; _ }, _) ->
       (try
          if String.equal (Longident.last txt) "Blocked" then found := true
        with _ -> ())
     | _ -> ());
    super.Ast_iterator.pat it p
  in
  let it = { super with Ast_iterator.pat } in
  it.Ast_iterator.pat it p;
  !found

let check ~path (str : Parsetree.structure) =
  let findings = ref [] in
  (* ordering, per top-level binding *)
  List.iter
    (fun (si : Parsetree.structure_item) ->
      match si.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let events = acquisitions vb.Parsetree.pvb_expr in
            let fname =
              match vb.Parsetree.pvb_pat.ppat_desc with
              | Parsetree.Ppat_var { txt; _ } -> txt
              | _ -> "<binding>"
            in
            let seen_row = ref false in
            List.iter
              (fun (loc, kind) ->
                match kind with
                | `Row -> seen_row := true
                | `Table ->
                  if !seen_row then
                    findings :=
                      Rule.finding ~id ~file:path ~loc
                        (Printf.sprintf
                           "Table lock acquired after a Row lock in %s: take \
                            coarse (Table) locks before fine (Row) locks to \
                            keep lock acquisition cycle-free"
                           fname)
                      :: !findings)
              events)
          vbs
      | _ -> ())
    str;
  (* blocked handling, whole file: every direct Txn.Lock.acquire must be
     the scrutinee of a match with an explicit Blocked case *)
  let ok = Hashtbl.create 8 in
  let all = ref [] in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
     | Parsetree.Pexp_match (scrut, cases)
       when List.exists
              (fun (c : Parsetree.case) ->
                pattern_mentions_blocked c.Parsetree.pc_lhs)
              cases ->
       let mark it2 (e2 : Parsetree.expression) =
         if is_direct_acquire e2 then
           Hashtbl.replace ok e2.Parsetree.pexp_loc.Location.loc_start ();
         super.Ast_iterator.expr it2 e2
       in
       let mit = { super with Ast_iterator.expr = mark } in
       mit.Ast_iterator.expr mit scrut
     | _ -> ());
    if is_direct_acquire e then all := e.Parsetree.pexp_loc :: !all;
    super.Ast_iterator.expr it e
  in
  let it = { super with Ast_iterator.expr } in
  it.Ast_iterator.structure it str;
  List.iter
    (fun (loc : Location.t) ->
      if not (Hashtbl.mem ok loc.Location.loc_start) then
        findings :=
          Rule.finding ~id ~file:path ~loc
            "result of Txn.Lock.acquire must be matched with an explicit \
             Txn.Lock.Blocked case (it carries the wait-for edge for the \
             deadlock detector), not ignored or wildcarded"
          :: !findings)
    (List.rev !all);
  List.rev !findings

let check_tree (_ : string list) = []

let explain =
  "All code that takes both lock levels must take them coarse-to-fine \
   (Table before Row): an inverted pair in two concurrent sessions is \
   a deadlock the distributed detector then has to break by killing a \
   transaction, whereas the discipline keeps same-statement \
   acquisition cycle-free by construction. The rule also requires \
   every direct Txn.Lock.acquire result to be matched against an \
   explicit Blocked case — Blocked carries the conflicting holders \
   that feed Would_block and the deadlock detector's wait-for edges, \
   and a wildcard silently drops both the wait edge and the retry. No \
   attribute escape hatch."

let check_program _ = []
