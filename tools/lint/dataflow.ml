(** Generic dataflow fixpoint over a {!Callgraph.t}.

    Facts live per function {e identifier} (functions sharing an id —
    e.g. a nested module colliding with a file module — share a fact,
    which joins their contributions: conservative). The solver is a
    plain worklist: seed every id with the join of its functions'
    [init], then propagate along call edges in the requested direction
    until nothing changes.

    - [Backward]: a function's fact accumulates contributions from its
      {e callees} — "what do I reach?" (e.g. transitive suspension).
    - [Forward]: a function's fact accumulates contributions from its
      {e callers} — "who reaches me?" (e.g. reachability from an entry
      point).

    [transfer ~site ~dep fact] maps the dependency's fact across one
    edge: [dep] is the function at the far end ([Backward]: the callee;
    [Forward]: the caller) and [site] the reference connecting them.
    Return [bottom] to kill propagation across that edge.

    The lattice is whatever ([bottom], [join], [equal]) describe; with
    [join] monotone and the fact domain finite-height the loop
    terminates — cycles in the graph (mutual recursion) just converge.
    The bool instance ([bottom = false], [join = (||)]) is what L10 and
    L12 use. *)

type direction = Backward | Forward

let solve (g : Callgraph.t) ~(dir : direction) ~(bottom : 'f)
    ~(equal : 'f -> 'f -> bool) ~(join : 'f -> 'f -> 'f)
    ~(init : Callgraph.fn -> 'f)
    ~(transfer : site:Callgraph.site -> dep:Callgraph.fn -> 'f -> 'f) :
    Callgraph.fn_id -> 'f =
  let key (id : Callgraph.fn_id) = (id.Callgraph.m, id.Callgraph.v) in
  let facts : (string * string, 'f) Hashtbl.t = Hashtbl.create 256 in
  let get id = Option.value ~default:bottom (Hashtbl.find_opt facts (key id)) in
  (* edges as (caller fn, site, callee id), resolved through aliases *)
  let edges =
    List.concat_map
      (fun (fn : Callgraph.fn) ->
        List.filter_map
          (fun (s : Callgraph.site) ->
            match Callgraph.resolved g s with
            | Some tgt -> Some (fn, s, tgt)
            | None -> None)
          fn.Callgraph.f_sites)
      g.Callgraph.fns
  in
  (* dependents: when fact(id) changes, which ids must be recomputed? *)
  let dependents : (string * string, Callgraph.fn_id) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun ((fn : Callgraph.fn), _, tgt) ->
      match dir with
      | Backward ->
        (* caller depends on callee *)
        Hashtbl.add dependents (key tgt) fn.Callgraph.f_id
      | Forward ->
        (* callee depends on caller *)
        Hashtbl.add dependents (key fn.Callgraph.f_id) tgt)
    edges;
  (* contributions flowing into an id *)
  let inputs : (string * string, Callgraph.fn * Callgraph.site * Callgraph.fn_id) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun ((fn : Callgraph.fn), s, tgt) ->
      match dir with
      | Backward -> Hashtbl.add inputs (key fn.Callgraph.f_id) (fn, s, tgt)
      | Forward -> Hashtbl.add inputs (key tgt) (fn, s, tgt))
    edges;
  let recompute (id : Callgraph.fn_id) =
    let base =
      List.fold_left
        (fun acc fn -> join acc (init fn))
        bottom (Callgraph.find g id)
    in
    List.fold_left
      (fun acc ((caller : Callgraph.fn), site, callee_id) ->
        match dir with
        | Backward ->
          (* dep = callee: join over all fns bound to that id *)
          List.fold_left
            (fun acc (dep : Callgraph.fn) ->
              join acc (transfer ~site ~dep (get callee_id)))
            acc (Callgraph.find g callee_id)
        | Forward ->
          join acc (transfer ~site ~dep:caller (get caller.Callgraph.f_id)))
      base
      (Hashtbl.find_all inputs (key id))
  in
  let all_ids =
    List.sort_uniq compare
      (List.map (fun (fn : Callgraph.fn) -> fn.Callgraph.f_id) g.Callgraph.fns)
  in
  let work = Queue.create () in
  let queued : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  let push id =
    if not (Hashtbl.mem queued (key id)) then begin
      Hashtbl.replace queued (key id) ();
      Queue.push id work
    end
  in
  List.iter push all_ids;
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    Hashtbl.remove queued (key id);
    let nv = recompute id in
    if not (equal nv (get id)) then begin
      Hashtbl.replace facts (key id) nv;
      List.iter push (Hashtbl.find_all dependents (key id))
    end
  done;
  get
