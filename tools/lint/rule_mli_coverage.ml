(** L4 mli-coverage: every module under [lib/] must have an interface
    file. An [.mli] is where the public surface of a subsystem is declared
    and documented; a module without one leaks every helper and invites
    cross-layer reach-ins the next refactor has to untangle. *)

let id = "L4"
let name = "mli-coverage"
let doc = "every .ml under lib/ must have a matching .mli interface"
let applies _ = false
let check ~path:_ _ = []

let check_tree paths =
  let have = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace have p ()) paths;
  List.filter_map
    (fun p ->
      if
        Rule.starts_with "lib/" p
        && Filename.check_suffix p ".ml"
        && not (Hashtbl.mem have (p ^ "i"))
      then
        Some
          {
            Rule.rule_id = id;
            file = p;
            line = 1;
            col = 0;
            message =
              Printf.sprintf
                "module %s has no interface file; add %si documenting its \
                 public surface"
                (Filename.remove_extension (Filename.basename p))
                p;
          }
      else None)
    (List.sort String.compare paths)

let explain =
  "An .mli is where a subsystem's public surface is declared and \
   documented; a module without one exports every helper and invites \
   cross-layer reach-ins the next refactor has to untangle. Every .ml \
   under lib/ must have a matching .mli. No attribute escape hatch — \
   write the interface."

let check_program _ = []
