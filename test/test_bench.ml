(* Guard the benchmark harness against bitrot: run the fast experiments
   end-to-end and sanity-check that the reproduced shapes hold. The slow
   figures (7, 8 at full size) are covered by their underlying workload
   tests; the full set runs via `dune exec bench/main.exe`. *)

let test_tables_render () = Tables.run ()

let test_fig9_shapes () =
  let results = Fig9.run () in
  (* (label, same_tps, diff_tps, crossed) per setup 0+1 / 4+1 / 8+1 *)
  match results with
  | [ (_, same0, diff0, cross0); (_, same4, diff4, cross4); (_, same8, diff8, _) ]
    ->
    Alcotest.(check bool) "no cross-node txns on one node" true (cross0 = 0.0);
    Alcotest.(check bool) "no 2PC penalty on one node" true
      (diff0 >= same0 *. 0.95);
    Alcotest.(check bool) "most diff-key txns are multi-node" true (cross4 > 0.5);
    Alcotest.(check bool) "2PC penalty at 4+1" true (diff4 < same4 *. 0.95);
    Alcotest.(check bool) "same-key scales with nodes" true
      (same4 > same0 *. 2.0 && same8 > same4);
    Alcotest.(check bool) "diff-key also scales" true
      (diff4 > diff0 *. 2.0 && diff8 >= diff4 *. 0.95)
  | _ -> Alcotest.fail "expected three setups"

let test_fig6_shapes () =
  let results = Fig6.run () in
  match List.map (fun (_, (nopm, _, _)) -> nopm) results with
  | [ pg; c0; c4; c8 ] ->
    (* the paper's qualitative claims *)
    Alcotest.(check bool) "0+1 slightly below postgres" true
      (c0 < pg && c0 > pg *. 0.5);
    Alcotest.(check bool) "4+1 well above postgres (memory fit)" true
      (c4 > pg *. 4.0);
    Alcotest.(check bool) "8+1 above 4+1 but sublinear" true
      (c8 > c4 && c8 < c4 *. 2.0)
  | _ -> Alcotest.fail "expected four setups"

let test_fig10_shapes () =
  let results = Fig10.run () in
  match List.map (fun (_, (tps, _, _)) -> tps) results with
  | [ pg; c0; c4; c8 ] ->
    Alcotest.(check bool) "0+1 slightly below postgres" true
      (c0 < pg && c0 > pg *. 0.5);
    Alcotest.(check bool) "4+1 far above postgres" true (c4 > pg *. 4.0);
    Alcotest.(check bool) "8+1 above 4+1" true (c8 > c4)
  | _ -> Alcotest.fail "expected four setups"

let test_closed_model_consistency () =
  (* the harness-level wrapper must agree with the raw solver *)
  let db = Workloads.Db.postgres () in
  let u =
    {
      Harness.per_node =
        [ ("coordinator", { Sim.Cost.cpu_s = 1.0; io_s = 2.0 }) ];
      node_meters = [ ("coordinator", Engine.Meter.zero) ];
      cross_rts = 0;
      rows_shipped = 0;
      connections = 0;
    }
  in
  let c = Harness.closed_throughput db u ~n_txns:1000 ~clients:1000 ~think_s:0.0 in
  (* io demand 2ms/txn on one disk: X = 500/s *)
  Alcotest.(check (float 1.0)) "disk-bound tps" 500.0 c.Harness.tps;
  Alcotest.(check bool) "bottleneck is the disk" true
    (c.Harness.bottleneck = "coordinator/disk")

let test_ablation_slow_start_shape () =
  (* the real executor, measured on the virtual clock: under a wide ramp
     fast tasks drain through one connection; with no ramp delay the same
     tasks fan out fully and the makespan collapses toward the longest
     fragment *)
  let fixture = Exec_bench.setup ~workers:2 ~shard_count:8 ~rows:64 () in
  let tasks = Exec_bench.same_shard_tasks (fst fixture) 8 in
  let ramped = Exec_bench.measure ~slow_start:10.0 fixture tasks in
  let eager = Exec_bench.measure ~slow_start:0.0 fixture tasks in
  Alcotest.(check int) "ramped: one connection" 1
    (Exec_bench.total_conns ramped);
  Alcotest.(check int) "eager: full fan-out" 8 (Exec_bench.total_conns eager);
  Alcotest.(check (float 1e-9)) "ramped is serial"
    ramped.Citus.Adaptive_executor.serial_time
    ramped.Citus.Adaptive_executor.makespan;
  Alcotest.(check bool) "eager is parallel" true
    (eager.Citus.Adaptive_executor.makespan
     < ramped.Citus.Adaptive_executor.makespan)

let test_tail_hedging_shape () =
  (* under a single-replica brownout, hedging must collapse the read tail
     (the stall never reaches p99) while leaving the median — served by
     healthy replicas either way — essentially untouched *)
  match Tail.measure_modes () with
  | [ off; on ] ->
    Alcotest.(check bool) "stall dominates the unhedged tail" true
      (off.Tail.p99 >= Tail.stall_extra);
    Alcotest.(check bool) "hedging cuts p99 below the stall" true
      (on.Tail.p99 < Tail.stall_extra /. 2.0);
    Alcotest.(check bool) "hedged p99 near the hedge threshold" true
      (on.Tail.p99 < (2.0 *. Tail.hedge_on) +. 0.005);
    Alcotest.(check bool) "some reads hedged" true (on.Tail.hedged > 0);
    Alcotest.(check bool) "no hedges when disabled" true (off.Tail.hedged = 0)
  | _ -> Alcotest.fail "expected two modes"

let test_consistency_shape () =
  (* the BENCH_consistency experiment end-to-end: four (mode, skew)
     cells, reads answered everywhere; snapshot readers really hit
     in-doubt windows (the measurement is not vacuous) and never tear,
     while eventual readers tear somewhere under the fumbled commits;
     overhead is whatever it is — measured, not asserted small *)
  match Consistency.measure_modes () with
  | [ ev; snap; ev_skew; snap_skew ] as all ->
    Alcotest.(check (list string))
      "cells in order"
      [ "eventual"; "snapshot"; "eventual"; "snapshot" ]
      (List.map (fun r -> r.Consistency.mode) all);
    Alcotest.(check (list bool))
      "skew flags in order" [ false; false; true; true ]
      (List.map (fun r -> r.Consistency.skewed) all);
    List.iter
      (fun r ->
        Alcotest.(check bool) "reads took time" true (r.Consistency.p50 > 0.0);
        Alcotest.(check bool) "p95 >= p50" true
          (r.Consistency.p95 >= r.Consistency.p50))
      all;
    Alcotest.(check bool) "snapshot readers hit in-doubt windows" true
      (snap.Consistency.indoubt_waits > 0
      && snap_skew.Consistency.indoubt_waits > 0);
    Alcotest.(check bool) "snapshot reads never torn" true
      (snap.Consistency.torn_reads = 0 && snap_skew.Consistency.torn_reads = 0);
    Alcotest.(check bool) "eventual reads tear under fumbled commits" true
      (ev.Consistency.torn_reads + ev_skew.Consistency.torn_reads > 0);
    Alcotest.(check bool) "eventual pays no snapshot machinery" true
      (ev.Consistency.indoubt_waits = 0 && ev_skew.Consistency.indoubt_waits = 0)
  | _ -> Alcotest.fail "expected four (mode, skew) cells"

let test_prepared_shape () =
  (* the BENCH_prepared experiment end-to-end: for both cacheable tiers,
     a warm plan-cache hit must cost the coordinator at least 2x less
     than an uncached EXECUTE (which re-enters the planner every time),
     and the cold first EXECUTE — which builds the cache entry — must be
     at least as expensive as a warm hit *)
  match Prepared.measure_modes () with
  | [ fp_cached; fp_uncached; r_cached; r_uncached ] as all ->
    Alcotest.(check (list string))
      "cells in order"
      [ "fast_path"; "fast_path"; "router"; "router" ]
      (List.map (fun r -> r.Prepared.tier) all);
    List.iter
      (fun (cached, uncached) ->
        Alcotest.(check bool) "warm hit costs something" true
          (cached.Prepared.p50 > 0.0);
        Alcotest.(check bool) "uncached p50 >= 2x cached p50" true
          (uncached.Prepared.p50 >= 2.0 *. cached.Prepared.p50);
        Alcotest.(check bool) "cold build >= warm hit" true
          (cached.Prepared.cold >= cached.Prepared.p50);
        Alcotest.(check bool) "e2e reflects the saving" true
          (uncached.Prepared.e2e_p50 >= cached.Prepared.e2e_p50))
      [ (fp_cached, fp_uncached); (r_cached, r_uncached) ]
  | _ -> Alcotest.fail "expected four (tier, mode) cells"

let test_mx_shape () =
  (* the BENCH_mx experiment end-to-end: same cluster, same YCSB-A
     workload, same seed — metadata sync alone must lift aggregate
     throughput strictly, because planning + fan-out demand moves off
     the lone coordinator's CPU and spreads across every node *)
  match Mx.measure_modes () with
  | [ single; mx ] ->
    Alcotest.(check string) "single mode first" "single" single.Mx.mode;
    Alcotest.(check string) "mx mode second" "mx" mx.Mx.mode;
    Alcotest.(check int) "one coordinator without sync" 1
      single.Mx.coordinators;
    Alcotest.(check bool) "several coordinators with sync" true
      (mx.Mx.coordinators > 1);
    Alcotest.(check bool) "both modes make progress" true
      (single.Mx.tps > 0.0 && mx.Mx.tps > 0.0);
    Alcotest.(check bool) "MX aggregate throughput strictly above single"
      true
      (mx.Mx.tps > single.Mx.tps);
    Alcotest.(check bool) "single mode bottlenecks on the coordinator" true
      (single.Mx.bottleneck = "coordinator/cpu"
      || single.Mx.bottleneck = "coordinator/disk")
  | _ -> Alcotest.fail "expected two modes"

let () =
  Alcotest.run "bench"
    [
      ( "smoke",
        [
          Alcotest.test_case "tables render" `Quick test_tables_render;
          Alcotest.test_case "fig6 shapes hold" `Slow test_fig6_shapes;
          Alcotest.test_case "fig9 shapes hold" `Slow test_fig9_shapes;
          Alcotest.test_case "fig10 shapes hold" `Slow test_fig10_shapes;
        ] );
      ( "model",
        [
          Alcotest.test_case "closed model" `Quick test_closed_model_consistency;
          Alcotest.test_case "slow start shape" `Quick
            test_ablation_slow_start_shape;
          Alcotest.test_case "tail hedging shape" `Quick
            test_tail_hedging_shape;
          Alcotest.test_case "consistency shape" `Quick test_consistency_shape;
          Alcotest.test_case "prepared shape" `Quick test_prepared_shape;
          Alcotest.test_case "mx shape" `Quick test_mx_shape;
        ] );
    ]
