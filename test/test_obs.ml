(* Observability layer: span tree shapes for each planner tier, counter
   monotonicity, snapshot determinism across same-seed runs, the
   disabled sink's zero overhead, and the typed-UDF usage errors. *)

let exec s sql = Engine.Instance.exec s sql

let make ?(workers = 2) () =
  let cluster = Cluster.Topology.create ~workers () in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  let s = Citus.Api.connect citus in
  (cluster, citus, s)

let setup_items s =
  ignore (exec s "CREATE TABLE items (key bigint PRIMARY KEY, qty bigint, val bigint)");
  ignore (exec s "SELECT create_distributed_table('items', 'key')");
  ignore (exec s "BEGIN");
  for k = 1 to 20 do
    ignore
      (exec s
         (Printf.sprintf
            "INSERT INTO items (key, qty, val) VALUES (%d, %d, %d)" k (k mod 5)
            (k * 10)))
  done;
  ignore (exec s "COMMIT")

(* lineitem by order_key, part by part_key: joining them on part_key is
   non-co-located and lands in the join-order fallback *)
let setup_warehouse s =
  ignore (exec s "CREATE TABLE lineitem (order_key bigint, part_key bigint, qty bigint)");
  ignore (exec s "SELECT create_distributed_table('lineitem', 'order_key')");
  ignore (exec s "CREATE TABLE part (part_key bigint, name text, size bigint)");
  ignore (exec s "SELECT create_distributed_table('part', 'part_key')");
  for o = 1 to 10 do
    ignore
      (exec s
         (Printf.sprintf
            "INSERT INTO lineitem (order_key, part_key, qty) VALUES (%d, %d, 1)"
            o ((o mod 5) + 1)))
  done;
  for p = 1 to 5 do
    ignore
      (exec s
         (Printf.sprintf
            "INSERT INTO part (part_key, name, size) VALUES (%d, 'p%d', %d)" p p
            (p mod 3)))
  done

(* run [f] with the sink enabled, return the spans it produced *)
let traced cluster f =
  let trace = Cluster.Topology.trace cluster in
  let was = Obs.Trace.enabled trace in
  Obs.Trace.set_enabled trace true;
  let mark = Obs.Trace.mark trace in
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_enabled trace was)
    (fun () -> f ());
  Obs.Trace.spans_since trace mark

let spans_of_kind kind spans =
  List.filter (fun (sp : Obs.Trace.span) -> String.equal sp.Obs.Trace.kind kind) spans

let tier_tags spans =
  List.filter_map
    (fun (sp : Obs.Trace.span) -> List.assoc_opt "tier" sp.Obs.Trace.tags)
    (spans_of_kind "plan" spans)

(* --- span tree shape per planner tier --- *)

let check_tier ~msg cluster s sql expected_tier =
  let spans = traced cluster (fun () -> ignore (exec s sql)) in
  (* exactly one root, and it is the coordinator's statement span;
     worker-side shard statements nest beneath it *)
  let roots =
    List.filter
      (fun (sp : Obs.Trace.span) ->
        match sp.Obs.Trace.parent with
        | None -> true
        | Some p ->
          not (List.exists (fun (q : Obs.Trace.span) -> q.Obs.Trace.id = p) spans))
      spans
  in
  (match roots with
   | [ root ] ->
     Alcotest.(check string)
       (msg ^ ": root is a statement span")
       "statement" root.Obs.Trace.kind;
     Alcotest.(check string)
       (msg ^ ": root runs on the coordinator")
       "coordinator" root.Obs.Trace.node
   | other ->
     Alcotest.failf "%s: expected 1 root span, got %d" msg (List.length other));
  Alcotest.(check bool)
    (msg ^ ": plan span tagged " ^ expected_tier)
    true
    (List.mem expected_tier (tier_tags spans));
  (* every span closed with a non-negative duration *)
  List.iter
    (fun (sp : Obs.Trace.span) ->
      Alcotest.(check bool) (msg ^ ": span closed") true sp.Obs.Trace.closed;
      Alcotest.(check bool)
        (msg ^ ": duration >= 0")
        true
        (sp.Obs.Trace.duration >= 0.0))
    spans;
  spans

let test_fast_path_and_router_spans () =
  let cluster, _citus, s = make () in
  setup_items s;
  ignore (exec s "CREATE TABLE dims (id bigint, name text)");
  ignore (exec s "SELECT create_reference_table('dims')");
  ignore (check_tier ~msg:"fast path" cluster s
            "SELECT * FROM items WHERE key = 5" "fast_path");
  ignore
    (check_tier ~msg:"router" cluster s
       "SELECT items.val, dims.name FROM items JOIN dims ON items.qty = dims.id \
        WHERE items.key = 3"
       "router")

let test_pushdown_spans () =
  let cluster, _citus, s = make () in
  setup_items s;
  let spans =
    check_tier ~msg:"pushdown" cluster s "SELECT count(*) FROM items" "pushdown"
  in
  (* multi-shard: per-fragment spans, tagged with their shard group *)
  let fragments = spans_of_kind "fragment" spans in
  Alcotest.(check bool)
    "pushdown produced fragment spans" true
    (List.length fragments > 1);
  List.iter
    (fun (sp : Obs.Trace.span) ->
      Alcotest.(check bool) "fragment tagged with shard" true
        (List.mem_assoc "shard" sp.Obs.Trace.tags))
    fragments

let test_join_order_spans () =
  let cluster, _citus, s = make () in
  setup_warehouse s;
  let spans =
    check_tier ~msg:"join order" cluster s
      "SELECT count(*) FROM lineitem JOIN part ON lineitem.part_key = part.part_key"
      "join_order"
  in
  (* the tiered planner's aborted attempt also left a (tierless) plan
     span: the tree records that the fallback happened *)
  Alcotest.(check bool) "two plan spans (attempt + fallback)" true
    (List.length (spans_of_kind "plan" spans) >= 2)

(* --- citus_explain(query, 'analyze') --- *)

let explain_analyze s sql =
  match
    (exec s
       (Printf.sprintf "SELECT citus_explain('%s', 'analyze')" sql))
      .Engine.Instance.rows
  with
  | [ [| Datum.Text t |] ] -> t
  | _ -> Alcotest.fail "citus_explain(_, 'analyze') must return one text row"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_explain_analyze_all_tiers () =
  let cluster, _citus, s = make () in
  setup_items s;
  setup_warehouse s;
  ignore (exec s "CREATE TABLE dims (id bigint, name text)");
  ignore (exec s "SELECT create_reference_table('dims')");
  let cases =
    [
      ("fast_path", "SELECT * FROM items WHERE key = 5");
      ( "router",
        "SELECT items.val, dims.name FROM items JOIN dims ON items.qty = \
         dims.id WHERE items.key = 3" );
      ("pushdown", "SELECT count(*) FROM items");
      ( "join_order",
        "SELECT count(*) FROM lineitem JOIN part ON lineitem.part_key = \
         part.part_key" );
    ]
  in
  List.iter
    (fun (tier, sql) ->
      let out = explain_analyze s sql in
      Alcotest.(check bool)
        (Printf.sprintf "analyze output names tier %s" tier)
        true
        (contains ~needle:("tier=" ^ tier) out);
      Alcotest.(check bool)
        (Printf.sprintf "%s: per-span timings present" tier)
        true
        (contains ~needle:"dur=" out))
    cases;
  (* the sink is restored to disabled afterwards *)
  Alcotest.(check bool) "tracing restored off" false
    (Obs.Trace.enabled (Cluster.Topology.trace cluster));
  (* plan-only form still works *)
  (match
     (exec s "SELECT citus_explain('SELECT count(*) FROM items')")
       .Engine.Instance.rows
   with
   | [ [| Datum.Text t |] ] ->
     Alcotest.(check bool) "plan-only explain unchanged" true
       (contains ~needle:"logical pushdown" t)
   | _ -> Alcotest.fail "citus_explain(query) must return one text row")

(* two same-seed runs produce bit-identical span trees *)
let test_explain_analyze_deterministic () =
  let run () =
    let _cluster, _citus, s = make () in
    setup_items s;
    explain_analyze s "SELECT count(*) FROM items"
  in
  Alcotest.(check string) "bit-identical analyze output" (run ()) (run ())

(* --- typed UDF usage errors --- *)

let test_udf_usage_errors () =
  let _cluster, _citus, s = make () in
  setup_items s;
  let expect_error sql expected =
    match exec s sql with
    | _ -> Alcotest.failf "%s should have failed" sql
    | exception Engine.Instance.Session_error m ->
      Alcotest.(check string) ("uniform usage error for " ^ sql) expected m
  in
  expect_error "SELECT create_distributed_table('items')"
    "create_distributed_table(table text, column text [, colocate_with text])";
  expect_error "SELECT citus_explain(42)"
    "citus_explain(query text [, mode text])";
  expect_error "SELECT citus_move_shard_placement('x', 'worker1')"
    "citus_move_shard_placement(shard_id int, to_node text)";
  expect_error "SELECT rebalance_table_shards(1)"
    "rebalance_table_shards()";
  expect_error "SELECT citus_set_replication_factor('two')"
    "citus_set_replication_factor(factor int)"

let test_udf_combinator_unit () =
  (* direct combinator checks, no cluster involved *)
  let spec = Citus.Udf.(int "a" @-> text "b" @?-> returning int_result) in
  Alcotest.(check string) "signature rendering" "f(a int [, b text])"
    (Citus.Udf.signature "f" spec);
  let impl a b () =
    (2 * a) + match b with Some _ -> 1 | None -> 0
  in
  (match Citus.Udf.apply "f" spec impl [ Datum.Int 5 ] with
   | Datum.Int 10 -> ()
   | d -> Alcotest.failf "expected 10, got %s" (Datum.to_display d));
  (match Citus.Udf.apply "f" spec impl [ Datum.Int 5; Datum.Text "x" ] with
   | Datum.Int 11 -> ()
   | d -> Alcotest.failf "expected 11, got %s" (Datum.to_display d));
  (* the implementation must not run on arity mismatch *)
  let ran = ref false in
  let spec0 = Citus.Udf.(returning int_result) in
  (match
     Citus.Udf.apply "g" spec0
       (fun () ->
         ran := true;
         1)
       [ Datum.Int 9 ]
   with
   | _ -> Alcotest.fail "extra argument must be rejected"
   | exception Engine.Instance.Session_error m ->
     Alcotest.(check string) "zero-arg usage" "g()" m);
  Alcotest.(check bool) "impl did not half-run" false !ran

(* --- counters --- *)

let counter snap name =
  match List.assoc_opt name snap.Obs.Metrics.s_counters with
  | Some v -> v
  | None -> 0

let test_counter_monotonicity () =
  let cluster, _citus, s = make () in
  setup_items s;
  let m = Cluster.Topology.metrics cluster in
  let before = Obs.Metrics.snapshot m in
  ignore (exec s "SELECT count(*) FROM items");
  ignore (exec s "SELECT * FROM items WHERE key = 5");
  let after = Obs.Metrics.snapshot m in
  (* every counter is monotonic *)
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "counter %s monotonic" name)
        true
        (counter after name >= v))
    before.Obs.Metrics.s_counters;
  Alcotest.(check bool) "pushdown tier counted" true
    (counter after "planner.tier.pushdown"
     > counter before "planner.tier.pushdown");
  Alcotest.(check bool) "fast path tier counted" true
    (counter after "planner.tier.fast_path"
     > counter before "planner.tier.fast_path");
  (* engine meters folded in under engine.<node>.* *)
  Alcotest.(check bool) "engine probe folded into snapshot" true
    (List.exists
       (fun (name, _) ->
         String.length name > 7 && String.sub name 0 7 = "engine.")
       after.Obs.Metrics.s_counters);
  (* fragment histogram collected observations *)
  (match List.assoc_opt "exec.fragment_seconds" after.Obs.Metrics.s_histograms with
   | Some h -> Alcotest.(check bool) "fragments observed" true (h.Obs.Metrics.count > 0)
   | None -> Alcotest.fail "exec.fragment_seconds histogram missing")

let test_snapshot_determinism () =
  let run () =
    let cluster, _citus, s = make () in
    Obs.Trace.set_enabled (Cluster.Topology.trace cluster) true;
    setup_items s;
    ignore (exec s "SELECT count(*) FROM items");
    ignore (exec s "UPDATE items SET qty = qty + 1 WHERE key = 3");
    let obs = Cluster.Topology.obs cluster in
    ( Obs.Metrics.render (Obs.Metrics.snapshot obs.Obs.metrics),
      Obs.Trace.render_tree (Obs.Trace.spans obs.Obs.trace) )
  in
  let m1, t1 = run () in
  let m2, t2 = run () in
  Alcotest.(check string) "bit-identical metric snapshots" m1 m2;
  Alcotest.(check (list string)) "bit-identical span trees" t1 t2

let test_disabled_sink_zero_cost () =
  let cluster, _citus, s = make () in
  setup_items s;
  let trace = Cluster.Topology.trace cluster in
  Alcotest.(check bool) "sink starts disabled" false (Obs.Trace.enabled trace);
  let started0 = Obs.Trace.started trace in
  ignore (exec s "SELECT count(*) FROM items");
  ignore (exec s "SELECT * FROM items WHERE key = 5");
  ignore (exec s "UPDATE items SET qty = 0 WHERE key = 7");
  Alcotest.(check int) "no spans started while disabled" started0
    (Obs.Trace.started trace);
  Alcotest.(check int) "no spans buffered" 0
    (List.length (Obs.Trace.spans trace));
  (* metrics still flow with the sink off *)
  Alcotest.(check bool) "counters unaffected by the sink" true
    (Obs.Metrics.counter_value (Cluster.Topology.metrics cluster)
       "planner.tier.pushdown"
     > 0)

(* spans close even when execution raises *)
let test_span_conservation_on_error () =
  let cluster, _citus, s = make () in
  setup_items s;
  let trace = Cluster.Topology.trace cluster in
  Obs.Trace.set_enabled trace true;
  (try ignore (exec s "SELECT no_such_column FROM items") with _ -> ());
  (try ignore (exec s "SELECT * FROM no_such_table WHERE key = 1") with _ -> ());
  Obs.Trace.set_enabled trace false;
  Alcotest.(check int) "started = finished after errors"
    (Obs.Trace.started trace) (Obs.Trace.finished trace);
  Alcotest.(check int) "no span left open" 0 (Obs.Trace.open_count trace)

(* --- the stat UDFs --- *)

let test_stat_udfs () =
  let cluster, _citus, s = make () in
  setup_items s;
  ignore (exec s "SELECT count(*) FROM items");
  (match (exec s "SELECT citus_stat_counters()").Engine.Instance.rows with
   | [ [| Datum.Json (Json.Obj fields) |] ] ->
     (match List.assoc_opt "counters" fields with
      | Some (Json.Obj counters) ->
        Alcotest.(check bool) "counters non-empty" true (counters <> []);
        Alcotest.(check bool) "planner tier visible via SQL" true
          (List.mem_assoc "planner.tier.pushdown" counters)
      | _ -> Alcotest.fail "citus_stat_counters: no counters object")
   | _ -> Alcotest.fail "citus_stat_counters must return one json row");
  (* with tracing on, the activity view shows this very statement *)
  ignore (exec s "SELECT citus_set_tracing('on')");
  (match (exec s "SELECT citus_stat_activity()").Engine.Instance.rows with
   | [ [| Datum.Json (Json.Obj fields) |] ] ->
     Alcotest.(check bool) "tracing_enabled reported" true
       (List.assoc_opt "tracing_enabled" fields = Some (Json.Bool true));
     (match List.assoc_opt "active" fields with
      | Some (Json.Arr spans) ->
        Alcotest.(check bool) "own statement span visible" true
          (List.exists
             (function
               | Json.Obj sp -> List.assoc_opt "kind" sp = Some (Json.Str "statement")
               | _ -> false)
             spans)
      | _ -> Alcotest.fail "citus_stat_activity: no active array")
   | _ -> Alcotest.fail "citus_stat_activity must return one json row");
  ignore (exec s "SELECT citus_set_tracing('off')");
  Alcotest.(check bool) "tracing off again" false
    (Obs.Trace.enabled (Cluster.Topology.trace cluster))

let () =
  Alcotest.run "obs"
    [
      ( "span-trees",
        [
          Alcotest.test_case "fast path + router" `Quick
            test_fast_path_and_router_spans;
          Alcotest.test_case "pushdown fragments" `Quick test_pushdown_spans;
          Alcotest.test_case "join-order fallback" `Quick test_join_order_spans;
          Alcotest.test_case "conservation on error" `Quick
            test_span_conservation_on_error;
        ] );
      ( "explain-analyze",
        [
          Alcotest.test_case "all four tiers" `Quick
            test_explain_analyze_all_tiers;
          Alcotest.test_case "deterministic" `Quick
            test_explain_analyze_deterministic;
        ] );
      ( "typed-udfs",
        [
          Alcotest.test_case "usage errors" `Quick test_udf_usage_errors;
          Alcotest.test_case "combinator" `Quick test_udf_combinator_unit;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "monotonicity" `Quick test_counter_monotonicity;
          Alcotest.test_case "determinism" `Quick test_snapshot_determinism;
          Alcotest.test_case "disabled sink" `Quick
            test_disabled_sink_zero_cost;
          Alcotest.test_case "stat udfs" `Quick test_stat_udfs;
        ] );
    ]
