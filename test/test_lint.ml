(* citus_lint: per-rule fixtures (violating and clean), baseline policy. *)

let rule id =
  match Registry.find id with
  | Some r -> r
  | None -> Alcotest.failf "no rule %s" id

(* Run one rule over inline fixture sources. *)
let run id sources = Lint_engine.run_sources ~rules:[ rule id ] sources

let ids fs = List.map (fun (f : Rule.finding) -> f.Rule.rule_id) fs

let lines fs = List.map (fun (f : Rule.finding) -> f.Rule.line) fs

(* --- L1 sql-injection --- *)

let l1_violating =
  {|let run t conn user =
  let q = Printf.sprintf "SELECT * FROM %s" user in
  Exec.on_conn_exn t conn q

let direct conn user =
  Exec.raw_on_conn_exn conn (Printf.sprintf "DELETE FROM %s" user)

let concat conn x = Cluster.Connection.exec_async conn ("SELECT " ^ x)

let parse x = Sqlfront.Parser.parse_select ("SELECT * FROM " ^ x)
|}

let l1_clean =
  {|let ok t conn gid =
  Exec.ast_on_conn_exn t conn (Sqlfront.Ast.Prepare_transaction gid)

let annotated conn shard =
  (Exec.raw_on_conn_exn conn
     (Printf.sprintf "SELECT * FROM %s" shard) [@lint.sql_static])

let static t conn = Exec.on_conn_exn t conn "COMMIT"

(* client-boundary senders are not sinks: workloads model client SQL *)
let client db user = Db.exec db (Printf.sprintf "SELECT %s" user)
|}

let test_l1_violating () =
  let fs = run "L1" [ ("lib/core/fx.ml", l1_violating) ] in
  Alcotest.(check int) "four taint flows" 4 (List.length fs);
  Alcotest.(check (list string)) "all L1" [ "L1"; "L1"; "L1"; "L1" ] (ids fs);
  Alcotest.(check (list int)) "argument locations" [ 3; 6; 8; 10 ] (lines fs)

let test_l1_clean () =
  let fs = run "L1" [ ("lib/core/fx.ml", l1_clean) ] in
  Alcotest.(check int) "clean" 0 (List.length fs)

(* --- L2 determinism --- *)

let l2_violating =
  {|let now () = Unix.gettimeofday ()
let later () = Unix.time ()
let cpu () = Sys.time ()
let roll () = Random.int 6
let seed () = Random.self_init ()
|}

let l2_clean =
  {|let now clock = Sim.Clock.now clock
let roll st = Random.State.int st 6
let seeded = Random.State.make [| 42 |]
|}

let test_l2_violating () =
  let fs = run "L2" [ ("lib/core/fx.ml", l2_violating) ] in
  Alcotest.(check int) "five ambient reads" 5 (List.length fs);
  Alcotest.(check (list int)) "one per line" [ 1; 2; 3; 4; 5 ] (lines fs)

let test_l2_clean () =
  let fs = run "L2" [ ("lib/core/fx.ml", l2_clean) ] in
  Alcotest.(check int) "seeded state is legal" 0 (List.length fs)

let test_l2_sim_exempt () =
  (* the sim layer is where time and randomness are implemented *)
  let fs = run "L2" [ ("lib/sim/clock.ml", l2_violating) ] in
  Alcotest.(check int) "lib/sim is out of scope" 0 (List.length fs)

(* --- L3 exception-hygiene --- *)

let l3_violating =
  {|let f h k = Hashtbl.find h k
let g l = List.hd l
let a l k = List.assoc k l
let o x = Option.get x
|}

let l3_clean =
  {|let f h k = try Hashtbl.find h k with Not_found -> 0

let g h k =
  match Hashtbl.find h k with
  | exception Not_found -> 0
  | v -> v

let h tbl k = match Hashtbl.find_opt tbl k with Some v -> v | None -> 0
|}

let test_l3_violating () =
  let fs = run "L3" [ ("lib/core/fx.ml", l3_violating) ] in
  Alcotest.(check int) "four partial lookups" 4 (List.length fs);
  Alcotest.(check (list int)) "one per line" [ 1; 2; 3; 4 ] (lines fs)

let test_l3_protected () =
  let fs = run "L3" [ ("lib/core/fx.ml", l3_clean) ] in
  Alcotest.(check int) "lexical handlers protect" 0 (List.length fs)

let test_l3_scope () =
  (* only lib/core and lib/cluster: workloads model client code *)
  let fs = run "L3" [ ("lib/workloads/fx.ml", l3_violating) ] in
  Alcotest.(check int) "lib/workloads is out of scope" 0 (List.length fs);
  let fs = run "L3" [ ("lib/cluster/fx.ml", l3_violating) ] in
  Alcotest.(check int) "lib/cluster is in scope" 4 (List.length fs)

(* --- L4 mli-coverage --- *)

let test_l4 () =
  let fs =
    run "L4"
      [
        ("lib/core/covered.ml", "");
        ("lib/core/covered.mli", "");
        ("lib/core/naked.ml", "");
        ("bin/main.ml", "");
      ]
  in
  Alcotest.(check int) "one uncovered module" 1 (List.length fs);
  match fs with
  | [ f ] ->
    Alcotest.(check string) "rule id" "L4" f.Rule.rule_id;
    Alcotest.(check string) "the naked module" "lib/core/naked.ml" f.Rule.file
  | _ -> Alcotest.fail "expected exactly one finding"

(* --- L5 no-catch-all --- *)

let l5_violating =
  {|let f x = try x () with _ -> ()

let j x = match x () with v -> v | exception _ -> 0
|}

let l5_clean =
  {|let reraise x = try x () with e -> raise e

let recorded t x = try x () with _ -> Health.record_ignored t "node"

let logged x = try x () with _ -> log_warn "swallowed"

let typed h k = try Hashtbl.find h k with Not_found -> 0
|}

let test_l5_violating () =
  let fs = run "L5" [ ("lib/core/twopc.ml", l5_violating) ] in
  Alcotest.(check int) "try and match-exception swallows" 2 (List.length fs);
  Alcotest.(check (list int)) "handler locations" [ 1; 3 ] (lines fs)

let test_l5_clean () =
  let fs = run "L5" [ ("lib/core/twopc.ml", l5_clean) ] in
  Alcotest.(check int) "re-raise/record/log/typed all pass" 0 (List.length fs)

let test_l5_scope () =
  (* only the reliability-critical files *)
  let fs = run "L5" [ ("lib/core/planner.ml", l5_violating) ] in
  Alcotest.(check int) "planner.ml is out of scope" 0 (List.length fs)

(* --- L6 twopc-state-machine --- *)

let l6_violating =
  {|let pre_commit t = ignore t

let post_commit st =
  st.State.prepared <- [];
  st.State.txn_conns <- []

let recover t =
  exec t (Sqlfront.Ast.Commit_prepared "gid")
|}

let l6_clean =
  {|let cleanup st =
  st.State.prepared <- [];
  st.State.txn_conns <- [];
  st.State.dist_xids <- []

let pre_commit st gids = st.State.prepared <- gids

let post_commit st = cleanup st

let on_abort st = cleanup st

let recover t mgr gid =
  if committed t gid then Txn.Manager.commit_prepared mgr gid
  else Txn.Manager.rollback_prepared mgr gid
|}

let test_l6_violating () =
  let fs = run "L6" [ ("lib/core/twopc.ml", l6_violating) ] in
  (* missing on_abort; pre_commit never moves [prepared]; post_commit
     leaks [dist_xids]; recover can only commit *)
  Alcotest.(check int) "four lost transitions" 4 (List.length fs);
  Alcotest.(check (list string)) "all L6" [ "L6"; "L6"; "L6"; "L6" ] (ids fs);
  Alcotest.(check (list int)) "finding locations" [ 1; 1; 3; 7 ] (lines fs)

let test_l6_clean () =
  (* field writes through a shared helper count: the analysis is a
     fixpoint over the local call graph *)
  let fs = run "L6" [ ("lib/core/twopc.ml", l6_clean) ] in
  Alcotest.(check int) "transitive writes satisfy the rule" 0 (List.length fs)

let test_l6_scope () =
  let fs = run "L6" [ ("lib/core/planner.ml", l6_violating) ] in
  Alcotest.(check int) "only twopc.ml is in scope" 0 (List.length fs)

(* --- L7 lock-order --- *)

let l7_violating =
  {|let inverted mgr owner table tid =
  (match Txn.Lock.acquire mgr ~owner (Txn.Lock.Row (table, tid)) Txn.Lock.Row_lock with
   | Txn.Lock.Granted -> ()
   | Txn.Lock.Blocked holders -> raise (Would_block holders));
  match Txn.Lock.acquire mgr ~owner (Txn.Lock.Table table) Txn.Lock.Row_exclusive with
  | Txn.Lock.Granted -> ()
  | Txn.Lock.Blocked holders -> raise (Would_block holders)

let dropped mgr owner table =
  ignore (Txn.Lock.acquire mgr ~owner (Txn.Lock.Table table) Txn.Lock.Access_share)

let wildcarded mgr owner table =
  match Txn.Lock.acquire mgr ~owner (Txn.Lock.Table table) Txn.Lock.Access_share with
  | Txn.Lock.Granted -> ()
  | _ -> ()
|}

let l7_clean =
  {|let disciplined mgr owner table tid =
  (match Txn.Lock.acquire mgr ~owner (Txn.Lock.Table table) Txn.Lock.Row_exclusive with
   | Txn.Lock.Granted -> ()
   | Txn.Lock.Blocked holders -> raise (Would_block holders));
  match Txn.Lock.acquire mgr ~owner (Txn.Lock.Row (table, tid)) Txn.Lock.Row_lock with
  | Txn.Lock.Granted -> ()
  | Txn.Lock.Blocked holders -> raise (Would_block holders)

let other_fn mgr owner table =
  (* a Table acquisition in a separate function is a separate scope *)
  match Txn.Lock.acquire mgr ~owner (Txn.Lock.Table table) Txn.Lock.Access_share with
  | Txn.Lock.Granted -> ()
  | Txn.Lock.Blocked holders -> raise (Would_block holders)

let via_wrapper ctx table tid =
  acquire_lock ctx (Txn.Lock.Table table) Txn.Lock.Row_exclusive;
  acquire_lock ctx (Txn.Lock.Row (table, tid)) Txn.Lock.Row_lock
|}

let test_l7_violating () =
  let fs = run "L7" [ ("lib/core/fx.ml", l7_violating) ] in
  (* Table-after-Row inversion; ignored outcome; wildcarded Blocked *)
  Alcotest.(check int) "three violations" 3 (List.length fs);
  Alcotest.(check (list string)) "all L7" [ "L7"; "L7"; "L7" ] (ids fs);
  Alcotest.(check (list int)) "finding locations" [ 5; 10; 13 ] (lines fs)

let test_l7_clean () =
  let fs = run "L7" [ ("lib/core/fx.ml", l7_clean) ] in
  Alcotest.(check int) "coarse-to-fine with Blocked handled" 0
    (List.length fs)

let test_l7_scope () =
  let fs = run "L7" [ ("test/test_fx.ml", l7_violating) ] in
  Alcotest.(check int) "tests assert on outcomes; out of scope" 0
    (List.length fs)

(* --- L8 span-conservation --- *)

let l8_violating =
  {|let manual trace now node =
  let sp = Obs.Trace.open_span trace ~now ~node ~kind:"stmt" () in
  work ();
  Obs.Trace.close_span trace ~now sp
|}

let l8_clean =
  {|let bracketed trace now node f =
  Obs.Trace.with_span trace ~now ~node ~kind:"stmt" f

let fiber trace parent now node f =
  Obs.Trace.with_span_parent trace ~parent ~now ~node ~kind:"fragment" f
|}

let test_l8_violating () =
  let fs = run "L8" [ ("lib/core/fx.ml", l8_violating) ] in
  Alcotest.(check int) "manual open and close both flagged" 2 (List.length fs);
  Alcotest.(check (list string)) "all L8" [ "L8"; "L8" ] (ids fs);
  Alcotest.(check (list int)) "call locations" [ 2; 4 ] (lines fs)

let test_l8_clean () =
  let fs = run "L8" [ ("lib/core/fx.ml", l8_clean) ] in
  Alcotest.(check int) "bracketed combinators pass" 0 (List.length fs)

let test_l8_scope () =
  (* lib/obs implements the combinators on the primitives *)
  let fs = run "L8" [ ("lib/obs/trace.ml", l8_violating) ] in
  Alcotest.(check int) "lib/obs is out of scope" 0 (List.length fs)

(* --- L9 fiber-blocking --- *)

let l9_violating =
  {|let bad_sleep t s =
  Sim.Sched.sleep s 1.0

let bad_await conn =
  Cluster.Connection.await (Cluster.Connection.exec_async conn "SELECT 1")

let bad_nested t fibs =
  List.iter (fun f -> ignore (Sim.Sched.await t f)) fibs
|}

let l9_clean =
  {|let scoped t f =
  State.with_sched t (fun sched -> Sim.Sched.await sched (f sched))

let param_scope sched fib = Sim.Sched.await_result sched fib

let spawned sched conn =
  Sim.Sched.spawn sched (fun () ->
      Cluster.Connection.await (Cluster.Connection.exec_async conn "SELECT 1"))

let boundary cluster until_ =
  (Sim.Sched.sleep_until (get_sched cluster) until_ [@lint.blocking])
|}

let test_l9_violating () =
  let fs = run "L9" [ ("lib/core/fx.ml", l9_violating) ] in
  Alcotest.(check int) "three unscoped suspensions" 3 (List.length fs);
  Alcotest.(check (list string)) "all L9" [ "L9"; "L9"; "L9" ] (ids fs);
  Alcotest.(check (list int)) "call locations" [ 2; 5; 8 ] (lines fs)

let test_l9_clean () =
  let fs = run "L9" [ ("lib/core/fx.ml", l9_clean) ] in
  Alcotest.(check int)
    "with_sched / sched param / spawn thunk / annotation all pass" 0
    (List.length fs)

let test_l9_scope () =
  (* the scheduler's own implementation suspends by construction *)
  let fs = run "L9" [ ("lib/sim/sched.ml", l9_violating) ] in
  Alcotest.(check int) "lib/sim is out of scope" 0 (List.length fs);
  let fs = run "L9" [ ("test/test_fx.ml", l9_violating) ] in
  Alcotest.(check int) "tests are out of scope" 0 (List.length fs)

(* --- L10 transitive-blocking --- *)

(* a two-hop suspending chain: Util.pause reaches Sim.Sched.sleep, and
   Mid.relay reaches it through Util — all callers of either must be in
   a scheduler scope *)
let l10_util =
  {|let pause sched = Sim.Sched.sleep sched 1.0
|}

let l10_mid =
  {|let relay sched = Util.pause sched
|}

let l10_violating =
  {|let tick t = Mid.relay t

let hof l = List.map Util.pause l
|}

let l10_clean =
  {|let ok t = State.with_sched t (fun sched -> Mid.relay sched)

let param sched = Mid.relay sched

let maint t = (Mid.relay t [@lint.blocking])
|}

(* a callee taking ?sched is dual-mode by construction *)
let l10_dual =
  {|let tickle ?sched t =
  match sched with Some s -> Sim.Sched.yield s | None -> ignore t
|}

let l10_files extra =
  [ ("lib/core/util.ml", l10_util); ("lib/core/mid.ml", l10_mid) ] @ extra

let test_l10_violating () =
  let fs = run "L10" (l10_files [ ("lib/core/fx.ml", l10_violating) ]) in
  (* the unscoped call and the higher-order use both count *)
  Alcotest.(check int) "call and higher-order use flagged" 2 (List.length fs);
  Alcotest.(check (list string)) "all L10" [ "L10"; "L10" ] (ids fs);
  Alcotest.(check (list int)) "site locations" [ 1; 3 ] (lines fs)

let test_l10_clean () =
  let fs = run "L10" (l10_files [ ("lib/core/fx.ml", l10_clean) ]) in
  Alcotest.(check int)
    "with_sched scope / sched param / [@lint.blocking] all pass" 0
    (List.length fs)

let test_l10_dual_mode () =
  let fs =
    run "L10"
      (l10_files
         [
           ("lib/core/dual.ml", l10_dual);
           ("lib/core/fx.ml", "let outside t = Dual.tickle t\n");
         ])
  in
  Alcotest.(check int) "?sched callee is dual-mode, callers free" 0
    (List.length fs)

let test_l10_scope () =
  let fs = run "L10" (l10_files [ ("test/test_fx.ml", l10_violating) ]) in
  Alcotest.(check int) "tests are out of scope" 0 (List.length fs)

(* --- L11 cancellation-safety --- *)

let l11_violating =
  {|let bad_lock mgr sched owner target =
  let _ = Txn.Lock.acquire mgr ~owner target Txn.Lock.Row_lock in
  Sim.Sched.sleep sched 1.0

let bad_span trace sched now node =
  let sp = Obs.Trace.open_span trace ~now ~node ~kind:"stmt" () in
  Sim.Sched.yield sched;
  Obs.Trace.close_span trace ~now sp
|}

let l11_clean =
  {|let bracketed mgr sched owner target =
  let _ = Txn.Lock.acquire mgr ~owner target Txn.Lock.Row_lock in
  Fun.protect
    ~finally:(fun () -> Txn.Lock.release_all mgr ~owner)
    (fun () -> Sim.Sched.sleep sched 1.0)

let released mgr sched owner target =
  let _ = Txn.Lock.acquire mgr ~owner target Txn.Lock.Row_lock in
  Txn.Lock.release_all mgr ~owner;
  Sim.Sched.sleep sched 1.0

let other_lambda mgr t owner target =
  let _ = Txn.Lock.acquire mgr ~owner target Txn.Lock.Row_lock in
  State.with_sched t (fun sched -> Sim.Sched.sleep sched 1.0)

let annotated mgr sched owner target =
  let _ =
    (Txn.Lock.acquire mgr ~owner target Txn.Lock.Row_lock
     [@lint.cancel_safe])
  in
  Sim.Sched.sleep sched 1.0
|}

let test_l11_violating () =
  let fs = run "L11" [ ("lib/core/fx.ml", l11_violating) ] in
  (* the lock and the span both held across a suspension *)
  Alcotest.(check int) "lock and span hazards" 2 (List.length fs);
  Alcotest.(check (list string)) "all L11" [ "L11"; "L11" ] (ids fs);
  Alcotest.(check (list int)) "acquire locations" [ 2; 6 ] (lines fs)

let test_l11_clean () =
  let fs = run "L11" [ ("lib/core/fx.ml", l11_clean) ] in
  Alcotest.(check int)
    "bracket / release-first / barrier lambda / annotation all pass" 0
    (List.length fs)

let test_l11_transitive () =
  (* the suspension may hide behind a call: Util.pause suspends *)
  let fs =
    run "L11"
      [
        ("lib/core/util.ml", l10_util);
        ( "lib/core/fx.ml",
          "let bad mgr sched owner target =\n\
          \  let _ = Txn.Lock.acquire mgr ~owner target Txn.Lock.Row_lock in\n\
          \  Util.pause sched\n" );
      ]
  in
  Alcotest.(check int) "transitive suspension counts" 1 (List.length fs);
  Alcotest.(check (list int)) "at the acquire" [ 2 ] (lines fs)

(* --- L12 deadline-propagation --- *)

(* the entry points are Adaptive_executor.execute and Twopc.*: fixture
   files take those module names *)
let l12_violating =
  {|let helper sched f = Sim.Sched.await_result sched f

let execute t sched conn f =
  ignore
    (Cluster.Connection.await (Cluster.Connection.exec_async conn "SELECT 1"));
  helper sched f
|}

let l12_clean =
  {|let helper sched dl f = Sim.Sched.await_result sched ~deadline:dl f

let execute t sched dl conn f =
  ignore
    (Cluster.Connection.await ~deadline:dl
       (Cluster.Connection.exec_async conn "SELECT 1"));
  helper sched dl f
|}

let l12_annotated =
  {|let execute t sched f =
  ignore (Sim.Sched.await_result sched f [@lint.unbounded])
|}

let test_l12_violating () =
  let fs = run "L12" [ ("lib/core/adaptive_executor.ml", l12_violating) ] in
  (* the bare await in execute, and helper's await_result — reachable
     from the entry point — both lack a deadline *)
  Alcotest.(check int) "both awaits flagged" 2 (List.length fs);
  Alcotest.(check (list string)) "all L12" [ "L12"; "L12" ] (ids fs);
  Alcotest.(check (list int)) "await locations" [ 1; 5 ] (lines fs)

let test_l12_clean () =
  let fs = run "L12" [ ("lib/core/adaptive_executor.ml", l12_clean) ] in
  Alcotest.(check int) "?deadline everywhere passes" 0 (List.length fs)

let test_l12_escape () =
  let fs = run "L12" [ ("lib/core/adaptive_executor.ml", l12_annotated) ] in
  Alcotest.(check int) "[@lint.unbounded] is trusted" 0 (List.length fs)

let test_l12_unreachable () =
  (* the same awaits in a module no entry point reaches are not on the
     statement path *)
  let fs = run "L12" [ ("lib/core/maintenance.ml", l12_violating) ] in
  Alcotest.(check int) "unreachable awaits are not findings" 0
    (List.length fs)

let test_l12_twopc_entry () =
  (* every top-level function of Twopc is an entry point *)
  let fs =
    run "L12"
      [ ("lib/core/twopc.ml", "let recover t sched f = Sim.Sched.await sched f\n") ]
  in
  Alcotest.(check int) "Twopc.* are entries" 1 (List.length fs)

(* --- L13 metric-registry --- *)

let l13_violating =
  {|let count m = Obs.Metrics.inc m "exec.tasks"

let dynamic m x = Obs.Metrics.observe m ("exec." ^ x) 1.0

let gauge m = Obs.Metrics.gauge_add m "breaker.tripped" 1.0
|}

let l13_clean =
  {|let count m = Obs.Metrics.inc m Obs.Metric_names.exec_tasks

let family m node = Obs.Metrics.inc m (Obs.Metric_names.net_connect_to node)

let unqualified m = Obs.Metrics.inc m Metric_names.exec_tasks

let by_label m = Obs.Metrics.inc m ~by:2 Obs.Metric_names.exec_tasks

let adhoc m x = Obs.Metrics.inc m (("dyn." ^ x) [@lint.metric_adhoc])
|}

let test_l13_violating () =
  let fs = run "L13" [ ("lib/core/fx.ml", l13_violating) ] in
  Alcotest.(check int) "literal and concatenated names flagged" 3
    (List.length fs);
  Alcotest.(check (list string)) "all L13" [ "L13"; "L13"; "L13" ] (ids fs);
  Alcotest.(check (list int)) "name-argument locations" [ 1; 3; 5 ] (lines fs)

let test_l13_clean () =
  let fs = run "L13" [ ("lib/core/fx.ml", l13_clean) ] in
  Alcotest.(check int)
    "registry constants / families / ~by label / annotation all pass" 0
    (List.length fs)

let test_l13_scope () =
  (* lib/obs implements the registry and the metrics store *)
  let fs = run "L13" [ ("lib/obs/metrics.ml", l13_violating) ] in
  Alcotest.(check int) "lib/obs is out of scope" 0 (List.length fs)

(* --- L14 snapshot-discipline --- *)

(* the dispatch primitives must be defined for the resolver: the rule
   checks resolved targets, not syntactic paths *)
let l14_exec_stub =
  {|let ast_on_conn_exn ?deadline ?snapshot t conn stmt =
  ignore (deadline, snapshot, t, conn, stmt)

let on_conn_exn ?deadline t conn sql = ignore (deadline, t, conn, sql)
|}

let l14_violating =
  {|let dispatch t conn stmt = Exec.ast_on_conn_exn t conn stmt

let execute t conn stmt =
  ignore (Exec.ast_on_conn_exn ~deadline:1.0 t conn stmt);
  dispatch t conn stmt
|}

let l14_clean =
  {|let dispatch t conn snap stmt = Exec.ast_on_conn_exn ~snapshot:snap t conn stmt

let execute t conn snap stmt =
  ignore (Exec.ast_on_conn_exn ?snapshot:snap t conn stmt);
  dispatch t conn snap stmt
|}

let l14_annotated =
  {|let execute t conn gid =
  ignore
    ((Exec.ast_on_conn_exn t conn (Sqlfront.Ast.Commit_prepared gid))
     [@lint.latest])
|}

let l14_control =
  {|let execute t conn = ignore (Exec.on_conn_exn t conn "BEGIN")
|}

let test_l14_violating () =
  let fs =
    run "L14"
      [
        ("lib/core/exec.ml", l14_exec_stub);
        ("lib/core/adaptive_executor.ml", l14_violating);
      ]
  in
  (* the deadline-only dispatch in execute, and helper's dispatch —
     reachable from the entry point — both omit ?snapshot *)
  Alcotest.(check int) "both dispatches flagged" 2 (List.length fs);
  Alcotest.(check (list string)) "all L14" [ "L14"; "L14" ] (ids fs);
  Alcotest.(check (list int)) "dispatch locations" [ 1; 4 ] (lines fs)

let test_l14_clean () =
  let fs =
    run "L14"
      [
        ("lib/core/exec.ml", l14_exec_stub);
        ("lib/core/adaptive_executor.ml", l14_clean);
      ]
  in
  Alcotest.(check int) "?snapshot everywhere passes" 0 (List.length fs)

let test_l14_escape () =
  let fs =
    run "L14"
      [
        ("lib/core/exec.ml", l14_exec_stub);
        ("lib/core/adaptive_executor.ml", l14_annotated);
      ]
  in
  Alcotest.(check int) "[@lint.latest] is trusted" 0 (List.length fs)

let test_l14_unreachable () =
  (* the same dispatches in a module the entry point does not reach are
     not on the statement path *)
  let fs =
    run "L14"
      [
        ("lib/core/exec.ml", l14_exec_stub);
        ("lib/core/maintenance.ml", l14_violating);
      ]
  in
  Alcotest.(check int) "unreachable dispatches are not findings" 0
    (List.length fs)

let test_l14_control_statements () =
  (* string-form control statements (BEGIN, SET) are not planned
     fragments; only the AST dispatch primitives are in scope *)
  let fs =
    run "L14"
      [
        ("lib/core/exec.ml", l14_exec_stub);
        ("lib/core/adaptive_executor.ml", l14_control);
      ]
  in
  Alcotest.(check int) "on_conn_exn is out of scope" 0 (List.length fs)

(* --- L16 metadata-write discipline --- *)

(* sites resolve against real definitions: stub the catalog layer's two
   files so Metasync is a known module the boundary cut can see *)
let l16_metasync_stub =
  {|let apply t op = op t

let update_placement t ~shard_id ~from_node ~to_node =
  apply t (fun m -> Metadata.update_placement m ~shard_id ~from_node ~to_node)

let bump_version t = apply t Metadata.bump_version
|}

let l16_metadata_stub =
  {|let update_placement t ~shard_id ~from_node ~to_node =
  ignore (t, shard_id, from_node, to_node)

let bump_version t = ignore t
|}

let l16_violating =
  {|let move t ~shard_id ~from_node ~to_node =
  Metadata.update_placement t ~shard_id ~from_node ~to_node

let ddl t = Metadata.bump_version t
|}

let l16_clean =
  {|let move t ~shard_id ~from_node ~to_node =
  Metasync.update_placement t ~shard_id ~from_node ~to_node

let ddl t = Metasync.bump_version t
|}

let l16_annotated =
  {|let whatif t ~shard_id ~from_node ~to_node =
  (Metadata.update_placement t ~shard_id ~from_node ~to_node
   [@lint.metadata_write])
|}

let test_l16_violating () =
  let fs =
    run "L16"
      [
        ("lib/core/metadata.ml", l16_metadata_stub);
        ("lib/core/metasync.ml", l16_metasync_stub);
        ("lib/core/rebalancer.ml", l16_violating);
      ]
  in
  Alcotest.(check int) "both direct mutations flagged" 2 (List.length fs);
  Alcotest.(check (list string)) "all L16" [ "L16"; "L16" ] (ids fs);
  Alcotest.(check (list int)) "mutator locations" [ 2; 4 ] (lines fs)

let test_l16_clean () =
  let fs =
    run "L16"
      [
        ("lib/core/metadata.ml", l16_metadata_stub);
        ("lib/core/metasync.ml", l16_metasync_stub);
        ("lib/core/rebalancer.ml", l16_clean);
      ]
  in
  Alcotest.(check int) "Metasync wrappers pass" 0 (List.length fs)

let test_l16_sync_layer () =
  (* the sync layer's own fan-out calls the mutators by design *)
  let fs =
    run "L16"
      [
        ("lib/core/metadata.ml", l16_metadata_stub);
        ("lib/core/metasync.ml", l16_metasync_stub);
      ]
  in
  Alcotest.(check int) "metasync.ml is the sanctioned caller" 0
    (List.length fs)

let test_l16_escape () =
  let fs =
    run "L16"
      [
        ("lib/core/metadata.ml", l16_metadata_stub);
        ("lib/core/metasync.ml", l16_metasync_stub);
        ("lib/core/planner.ml", l16_annotated);
      ]
  in
  Alcotest.(check int) "[@lint.metadata_write] is trusted" 0 (List.length fs)

let test_l16_helper_reachability () =
  (* interprocedural: the same helper wrapping a mutator is legal when
     the sync layer is its only caller, flagged when reachable from an
     unsanctioned root *)
  let helper =
    {|let flip t ~shard_id ~from_node ~to_node =
  Metadata.update_placement t ~shard_id ~from_node ~to_node
|}
  in
  let sync_only_caller =
    {|let apply t op = op t

let cutover t ~shard_id ~from_node ~to_node =
  apply t (fun _ -> Catutil.flip t ~shard_id ~from_node ~to_node)
|}
  in
  let outside_caller =
    {|let move t ~shard_id ~from_node ~to_node =
  Catutil.flip t ~shard_id ~from_node ~to_node
|}
  in
  let fs =
    run "L16"
      [
        ("lib/core/metadata.ml", l16_metadata_stub);
        ("lib/core/metasync.ml", sync_only_caller);
        ("lib/core/catutil.ml", helper);
      ]
  in
  Alcotest.(check int) "helper with only sync-layer callers passes" 0
    (List.length fs);
  let fs =
    run "L16"
      [
        ("lib/core/metadata.ml", l16_metadata_stub);
        ("lib/core/metasync.ml", sync_only_caller);
        ("lib/core/catutil.ml", helper);
        ("lib/core/rebalancer.ml", outside_caller);
      ]
  in
  Alcotest.(check int) "helper reachable from outside is flagged" 1
    (List.length fs);
  Alcotest.(check (list string)) "the L16 is in the helper" [ "L16" ] (ids fs)

(* --- call-graph builder --- *)

let build sources =
  Callgraph.build
    (List.map
       (fun (path, src) -> (path, Lint_engine.parse_impl ~path src))
       sources)

let find_fn g m v =
  match Callgraph.find g { Callgraph.m; v } with
  | fn :: _ -> fn
  | [] -> Alcotest.failf "function %s.%s not in graph" m v

let test_cg_cross_module () =
  let g =
    build
      [
        ("lib/core/a.ml", "let target x = x\n");
        ("lib/core/b.ml", "let use x = Citus.A.target x\n");
      ]
  in
  let use = find_fn g "B" "use" in
  match use.Callgraph.f_sites with
  | [ s ] ->
    (match Callgraph.resolved g s with
     | Some { Callgraph.m = "A"; v = "target" } -> ()
     | _ -> Alcotest.fail "cross-module edge not resolved");
    (match s.Callgraph.s_kind with
     | Callgraph.Call { labels = [] } -> ()
     | _ -> Alcotest.fail "expected an application site")
  | sites -> Alcotest.failf "expected one site, got %d" (List.length sites)

let test_cg_alias () =
  let g =
    build
      [
        ("lib/core/a.ml", "let target x = x\n");
        ("lib/core/b.ml", "let alias = A.target\n");
        ("lib/core/c.ml", "let use x = B.alias x\n");
      ]
  in
  let use = find_fn g "C" "use" in
  match use.Callgraph.f_sites with
  | [ s ] -> (
    match Callgraph.resolved g s with
    | Some { Callgraph.m = "A"; v = "target" } -> ()
    | Some other ->
      Alcotest.failf "alias chased to %s" (Callgraph.id_str other)
    | None -> Alcotest.fail "alias not resolved")
  | sites -> Alcotest.failf "expected one site, got %d" (List.length sites)

let test_cg_higher_order () =
  (* passing a known function as a value is a conservative edge: the
     suspension fact flows through it *)
  let g =
    build
      [
        ("lib/core/a.ml", "let poke sched = Sim.Sched.yield sched\n");
        ("lib/core/b.ml", "let spread l = List.map A.poke l\n");
      ]
  in
  let fact = Suspend.facts g in
  Alcotest.(check bool) "value use propagates suspension" true
    (fact { Callgraph.m = "B"; v = "spread" })

let test_cg_cycle () =
  (* mutual recursion across modules: the fixpoint terminates and both
     sides carry the fact *)
  let g =
    build
      [
        ( "lib/core/a.ml",
          "let ping sched = ignore (B.pong sched); Sim.Sched.yield sched\n" );
        ("lib/core/b.ml", "let pong sched = A.ping sched\n");
      ]
  in
  let fact = Suspend.facts g in
  Alcotest.(check bool) "cycle converges: A.ping suspends" true
    (fact { Callgraph.m = "A"; v = "ping" });
  Alcotest.(check bool) "cycle converges: B.pong suspends" true
    (fact { Callgraph.m = "B"; v = "pong" })

let test_cg_local_open () =
  (* unqualified names resolve through a local module open *)
  let g =
    build
      [
        ("lib/core/a.ml", "let target x = x\n");
        ("lib/core/b.ml", "let use x = A.(target x)\n");
      ]
  in
  let use = find_fn g "B" "use" in
  let resolved_targets =
    List.filter_map (fun s -> Callgraph.resolved g s) use.Callgraph.f_sites
  in
  Alcotest.(check bool) "open-scoped call resolved" true
    (List.exists
       (fun { Callgraph.m; v } -> m = "A" && v = "target")
       resolved_targets)

(* --- findings output --- *)

let test_sexp_rendering () =
  let f =
    {
      Rule.rule_id = "L10";
      file = "lib/core/fx.ml";
      line = 3;
      col = 7;
      message = {|say "hi"|};
    }
  in
  Alcotest.(check string) "canonical form"
    {|((rule L10) (file "lib/core/fx.ml") (line 3) (col 7) (message "say \"hi\""))|}
    (Lint_engine.finding_sexp f)

(* --- registry and baseline --- *)

let test_registry () =
  Alcotest.(check int) "sixteen rules" 16 (List.length Registry.all);
  List.iter
    (fun id ->
      match Registry.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "rule %s not registered" id)
    [ "L1"; "L2"; "L3"; "L4"; "L5"; "L6"; "L7"; "L8"; "L9"; "L10"; "L11";
      "L12"; "L13"; "L14"; "L15"; "L16"; "sql-injection"; "determinism";
      "lock-order"; "span-conservation"; "fiber-blocking";
      "transitive-blocking"; "cancel-safety"; "deadline-propagation";
      "metric-registry"; "snapshot-discipline"; "no-reparse";
      "metadata-write" ]

let test_explanations () =
  (* --explain depends on every rule shipping a non-trivial rationale *)
  List.iter
    (fun (module R : Rule.S) ->
      if String.length R.explain < 80 then
        Alcotest.failf "rule %s has no real explanation" R.id)
    Registry.all

let test_baseline_empty () =
  (* the live baseline must stay empty: new findings are fixed, not
     grandfathered (shrink-only policy, tools/lint/README.md) *)
  let entries = Lint_engine.load_baseline "../tools/lint/baseline.sexp" in
  Alcotest.(check int) "no grandfathered findings" 0 (List.length entries)

let test_baseline_parse () =
  let entries =
    Lint_engine.parse_sexps
      "; comment\n(L3 lib/core/api.ml 16)\n(L1 \"lib/core/tenant.ml\" 94)\n"
  in
  Alcotest.(check int) "two entries plus comment" 2 (List.length entries)

let () =
  Alcotest.run "lint"
    [
      ( "l1-sql-injection",
        [
          Alcotest.test_case "violating" `Quick test_l1_violating;
          Alcotest.test_case "clean" `Quick test_l1_clean;
        ] );
      ( "l2-determinism",
        [
          Alcotest.test_case "violating" `Quick test_l2_violating;
          Alcotest.test_case "clean" `Quick test_l2_clean;
          Alcotest.test_case "sim exempt" `Quick test_l2_sim_exempt;
        ] );
      ( "l3-exception-hygiene",
        [
          Alcotest.test_case "violating" `Quick test_l3_violating;
          Alcotest.test_case "protected" `Quick test_l3_protected;
          Alcotest.test_case "scope" `Quick test_l3_scope;
        ] );
      ("l4-mli-coverage", [ Alcotest.test_case "coverage" `Quick test_l4 ]);
      ( "l5-no-catch-all",
        [
          Alcotest.test_case "violating" `Quick test_l5_violating;
          Alcotest.test_case "clean" `Quick test_l5_clean;
          Alcotest.test_case "scope" `Quick test_l5_scope;
        ] );
      ( "l6-twopc-state-machine",
        [
          Alcotest.test_case "violating" `Quick test_l6_violating;
          Alcotest.test_case "clean" `Quick test_l6_clean;
          Alcotest.test_case "scope" `Quick test_l6_scope;
        ] );
      ( "l7-lock-order",
        [
          Alcotest.test_case "violating" `Quick test_l7_violating;
          Alcotest.test_case "clean" `Quick test_l7_clean;
          Alcotest.test_case "scope" `Quick test_l7_scope;
        ] );
      ( "l8-span-conservation",
        [
          Alcotest.test_case "violating" `Quick test_l8_violating;
          Alcotest.test_case "clean" `Quick test_l8_clean;
          Alcotest.test_case "scope" `Quick test_l8_scope;
        ] );
      ( "l9-fiber-blocking",
        [
          Alcotest.test_case "violating" `Quick test_l9_violating;
          Alcotest.test_case "clean" `Quick test_l9_clean;
          Alcotest.test_case "scope" `Quick test_l9_scope;
        ] );
      ( "l10-transitive-blocking",
        [
          Alcotest.test_case "violating" `Quick test_l10_violating;
          Alcotest.test_case "clean" `Quick test_l10_clean;
          Alcotest.test_case "dual mode" `Quick test_l10_dual_mode;
          Alcotest.test_case "scope" `Quick test_l10_scope;
        ] );
      ( "l11-cancel-safety",
        [
          Alcotest.test_case "violating" `Quick test_l11_violating;
          Alcotest.test_case "clean" `Quick test_l11_clean;
          Alcotest.test_case "transitive" `Quick test_l11_transitive;
        ] );
      ( "l12-deadline-propagation",
        [
          Alcotest.test_case "violating" `Quick test_l12_violating;
          Alcotest.test_case "clean" `Quick test_l12_clean;
          Alcotest.test_case "escape" `Quick test_l12_escape;
          Alcotest.test_case "unreachable" `Quick test_l12_unreachable;
          Alcotest.test_case "twopc entry" `Quick test_l12_twopc_entry;
        ] );
      ( "l13-metric-registry",
        [
          Alcotest.test_case "violating" `Quick test_l13_violating;
          Alcotest.test_case "clean" `Quick test_l13_clean;
          Alcotest.test_case "scope" `Quick test_l13_scope;
        ] );
      ( "l14-snapshot-discipline",
        [
          Alcotest.test_case "violating" `Quick test_l14_violating;
          Alcotest.test_case "clean" `Quick test_l14_clean;
          Alcotest.test_case "escape" `Quick test_l14_escape;
          Alcotest.test_case "unreachable" `Quick test_l14_unreachable;
          Alcotest.test_case "control statements" `Quick
            test_l14_control_statements;
        ] );
      ( "l16-metadata-write",
        [
          Alcotest.test_case "violating" `Quick test_l16_violating;
          Alcotest.test_case "clean" `Quick test_l16_clean;
          Alcotest.test_case "sync layer" `Quick test_l16_sync_layer;
          Alcotest.test_case "escape" `Quick test_l16_escape;
          Alcotest.test_case "helper reachability" `Quick
            test_l16_helper_reachability;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "cross-module edge" `Quick test_cg_cross_module;
          Alcotest.test_case "alias chase" `Quick test_cg_alias;
          Alcotest.test_case "higher-order" `Quick test_cg_higher_order;
          Alcotest.test_case "cycle" `Quick test_cg_cycle;
          Alcotest.test_case "local open" `Quick test_cg_local_open;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "explanations" `Quick test_explanations;
          Alcotest.test_case "sexp rendering" `Quick test_sexp_rendering;
          Alcotest.test_case "baseline empty" `Quick test_baseline_empty;
          Alcotest.test_case "baseline parse" `Quick test_baseline_parse;
        ] );
    ]
