(* Cluster topology and connection accounting: the counters the benchmark
   harness prices must mean what they claim. *)

(* submit + await in one step; these tests exercise the accounting, not
   the split round trip *)
let cexec conn sql = Cluster.Connection.(await (exec_async conn sql))

let test_topology_shapes () =
  let c0 = Cluster.Topology.create ~workers:0 () in
  Alcotest.(check int) "0 workers: coordinator is the data node" 1
    (List.length (Cluster.Topology.data_nodes c0));
  Alcotest.(check string) "it is the coordinator" "coordinator"
    (List.hd (Cluster.Topology.data_nodes c0)).Cluster.Topology.node_name;
  let c4 = Cluster.Topology.create ~workers:4 () in
  Alcotest.(check int) "4 workers" 4 (List.length (Cluster.Topology.data_nodes c4));
  Alcotest.(check int) "5 nodes total" 5 (List.length (Cluster.Topology.all_nodes c4));
  (match Cluster.Topology.find_node c4 "worker3" with
   | n -> Alcotest.(check string) "lookup" "worker3" n.Cluster.Topology.node_name);
  match Cluster.Topology.find_node c4 "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown node must raise"

let test_connection_round_trip_accounting () =
  let c = Cluster.Topology.create ~workers:2 () in
  let w1 = Cluster.Topology.find_node c "worker1" in
  let before = Cluster.Topology.net_snapshot c in
  let conn = Cluster.Connection.open_ ~origin:"coordinator" c w1 in
  ignore (cexec conn "CREATE TABLE t (a bigint)");
  ignore (cexec conn "INSERT INTO t VALUES (1)");
  ignore (cexec conn "SELECT * FROM t");
  let after = Cluster.Topology.net_snapshot c in
  let d = Cluster.Topology.net_diff ~after ~before in
  Alcotest.(check int) "one connection opened" 1 d.Cluster.Topology.connections_opened;
  Alcotest.(check int) "three round trips" 3 d.Cluster.Topology.round_trips;
  Alcotest.(check int) "all cross-node" 3 d.Cluster.Topology.cross_round_trips;
  Alcotest.(check int) "one row shipped back" 1 d.Cluster.Topology.rows_shipped

let test_local_connection_not_cross () =
  let c = Cluster.Topology.create ~workers:2 () in
  let coord = c.Cluster.Topology.coordinator in
  let before = Cluster.Topology.net_snapshot c in
  let conn = Cluster.Connection.open_ ~origin:"coordinator" c coord in
  ignore (cexec conn "SELECT 1");
  let d =
    Cluster.Topology.net_diff ~after:(Cluster.Topology.net_snapshot c) ~before
  in
  Alcotest.(check int) "counts as a round trip" 1 d.Cluster.Topology.round_trips;
  Alcotest.(check int) "but not cross-node" 0 d.Cluster.Topology.cross_round_trips

let test_copy_counts_rows_shipped () =
  let c = Cluster.Topology.create ~workers:1 () in
  let w = Cluster.Topology.find_node c "worker1" in
  let conn = Cluster.Connection.open_ ~origin:"coordinator" c w in
  ignore (cexec conn "CREATE TABLE t (a bigint)");
  let before = Cluster.Topology.net_snapshot c in
  ignore (Cluster.Connection.copy conn ~table:"t" ~columns:None [ "1"; "2"; "3" ]);
  let d =
    Cluster.Topology.net_diff ~after:(Cluster.Topology.net_snapshot c) ~before
  in
  Alcotest.(check int) "one batch round trip" 1 d.Cluster.Topology.round_trips;
  Alcotest.(check int) "three rows shipped" 3 d.Cluster.Topology.rows_shipped

let test_exec_ast_ships_text () =
  (* the statement travels as deparsed SQL: the remote engine re-parses *)
  let c = Cluster.Topology.create ~workers:1 () in
  let w = Cluster.Topology.find_node c "worker1" in
  let conn = Cluster.Connection.open_ c w in
  ignore (cexec conn "CREATE TABLE t (a bigint, b text)");
  let stmt =
    Sqlfront.Parser.parse_statement
      "INSERT INTO t (a, b) VALUES (1, 'it''s quoted')"
  in
  ignore (Cluster.Connection.exec_ast conn stmt);
  match
    (cexec conn "SELECT b FROM t WHERE a = 1").Engine.Instance.rows
  with
  | [ [| Datum.Text "it's quoted" |] ] -> ()
  | _ -> Alcotest.fail "text did not survive the wire"

let test_clock () =
  let clk = Sim.Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Sim.Clock.now clk);
  Sim.Clock.advance clk 1.5;
  Sim.Clock.advance clk 0.5;
  Alcotest.(check (float 1e-9)) "advances" 2.0 (Sim.Clock.now clk);
  Sim.Clock.set clk 10.0;
  Alcotest.(check (float 1e-9)) "set" 10.0 (Sim.Clock.now clk)

let () =
  Alcotest.run "cluster"
    [
      ( "topology",
        [ Alcotest.test_case "shapes" `Quick test_topology_shapes ] );
      ( "accounting",
        [
          Alcotest.test_case "round trips" `Quick
            test_connection_round_trip_accounting;
          Alcotest.test_case "local not cross" `Quick test_local_connection_not_cross;
          Alcotest.test_case "copy rows" `Quick test_copy_counts_rows_shipped;
          Alcotest.test_case "text wire format" `Quick test_exec_ast_ships_text;
        ] );
      ( "clock", [ Alcotest.test_case "basics" `Quick test_clock ] );
    ]
