(* Gray-failure chaos: seeded stall storms. Unlike test_chaos (crashes,
   partitions, lost replies) every node here stays up and every message
   eventually arrives — replies just land seconds late. Brownouts, ambient
   latency and micro-stalls at scheduler suspension points churn under a
   pgbench-style transfer/read workload with statement timeouts and
   hedged reads enabled.

   The checked surface, per seed:

   - boundedness: every statement either completes or fails within its
     deadline plus a small epsilon (two bounded phases for COMMIT) — a
     statement that waits out a multi-second stall is a bug even if it
     eventually succeeds;
   - no leaks: once the storm quiesces, no transaction connection is
     pinned, no prepared pair is orphaned, every span opened was closed;
   - no duplicated side effects: hedging is reads-only, so the transfer
     total is conserved exactly;
   - convergence: prepared transactions and commit records drain, every
     breaker (including slow-trips) returns to Closed;
   - reproducibility: the same seed replays the same fault trace,
     outcomes, totals, metric snapshot and span tree bit-for-bit. *)

let n_keys = 16
let initial_balance = 100
let expected_total = n_keys * initial_balance
let n_stmts = 30
let clock_step = 0.25
let timeout = 0.5
let hedge_threshold = 0.05

(* covers ambient latency draws, modeled fragment costs, suspension-point
   micro-stalls and posted-rollback cleanup — but not a real stall, whose
   extra delay starts at 1s *)
let epsilon = 0.3

type outcome = Committed | Failed | Unknown

let outcome_name = function
  | Committed -> "committed"
  | Failed -> "failed"
  | Unknown -> "unknown"

let exec s sql = Engine.Instance.exec s sql

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | rows ->
    Alcotest.fail
      (Printf.sprintf "expected one int from %S, got %d rows" sql
         (List.length rows))

let fault_of cluster =
  match Cluster.Topology.fault cluster with
  | Some f -> f
  | None -> Alcotest.fail "cluster has no fault plan"

let make_cluster ~seed =
  let cluster =
    Cluster.Topology.create ~workers:3 ~fault_seed:seed ~sched_seed:seed ()
  in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  Citus.Api.set_replication_factor citus 2;
  let st = Citus.Api.coordinator_state citus in
  st.Citus.State.config.Citus.State.statement_timeout <- timeout;
  st.Citus.State.config.Citus.State.hedge_threshold <- hedge_threshold;
  let s = Citus.Api.connect citus in
  ignore
    (exec s "CREATE TABLE accounts (key bigint PRIMARY KEY, balance bigint)");
  ignore (exec s "SELECT create_distributed_table('accounts', 'key')");
  for k = 0 to n_keys - 1 do
    ignore
      (exec s
         (Printf.sprintf "INSERT INTO accounts (key, balance) VALUES (%d, %d)"
            k initial_balance))
  done;
  (cluster, citus)

(* --- the storm: only gray faults, nothing ever dies --- *)

let schedule_storm cluster fault rng =
  let workers =
    List.map
      (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
      cluster.Cluster.Topology.workers
  in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let horizon = float_of_int n_stmts *. clock_step in
  (* ambient link latency: small, jittered, always on *)
  Sim.Fault.set_latency fault ~mean:0.005 ~jitter:0.005;
  (* brownouts: a worker's replies land seconds late for a while — far
     past the statement deadline, nowhere near a crash *)
  for _ = 1 to 4 do
    let at = Random.State.float rng (horizon *. 0.9) in
    let extra = 1.0 +. Random.State.float rng 5.0 in
    let duration = 0.5 +. Random.State.float rng 2.0 in
    Sim.Fault.schedule_stall fault ~at ~extra ~duration (pick workers)
  done;
  (* micro-stalls at scheduler suspension points *)
  Sim.Fault.set_suspension_hazard fault ~p:0.02 ~stall:0.002

(* --- the timed workload --- *)

(* Every statement is timed on the virtual clock against its deadline
   bound; overshoots are collected and failing is deferred to the end so
   a violation reports the worst offender, tagged with its seed. *)
let timed cluster violations ~bound ~label f =
  let clock = cluster.Cluster.Topology.clock in
  let t0 = Sim.Clock.now clock in
  let result = match f () with r -> Ok r | exception e -> Error e in
  let elapsed = Sim.Clock.now clock -. t0 in
  if elapsed > bound then
    violations := (label, elapsed, bound) :: !violations;
  result

let ensure_session citus sref =
  if not (Engine.Instance.session_alive !sref) then
    sref := Citus.Api.connect citus

let rollback_quietly s = try ignore (exec s "ROLLBACK") with _ -> ()

let transfer cluster citus violations sref ~k1 ~k2 ~amount =
  ensure_session citus sref;
  let s = !sref in
  let stmt ~bound label sql =
    match timed cluster violations ~bound ~label (fun () -> exec s sql) with
    | Ok _ -> true
    | Error _ -> false
  in
  let one = timeout +. epsilon in
  (* COMMIT runs two bounded phases (PREPARE, COMMIT PREPARED) *)
  let two = (2.0 *. timeout) +. epsilon in
  if
    stmt ~bound:one "BEGIN" "BEGIN"
    && stmt ~bound:one
         (Printf.sprintf "debit %d" k1)
         (Printf.sprintf
            "UPDATE accounts SET balance = balance - %d WHERE key = %d" amount
            k1)
    && stmt ~bound:one
         (Printf.sprintf "credit %d" k2)
         (Printf.sprintf
            "UPDATE accounts SET balance = balance + %d WHERE key = %d" amount
            k2)
  then
    if stmt ~bound:two "COMMIT" "COMMIT" then Committed
    else begin
      (* an error during COMMIT leaves the true outcome undetermined at
         the client — recovery decides it later *)
      rollback_quietly s;
      Unknown
    end
  else begin
    rollback_quietly s;
    Failed
  end

let read cluster citus violations sref k =
  ensure_session citus sref;
  let s = !sref in
  match
    timed cluster violations ~bound:(timeout +. epsilon)
      ~label:(Printf.sprintf "read %d" k)
      (fun () ->
        exec s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k))
  with
  | Ok _ -> ()
  | Error _ -> rollback_quietly s

(* --- quiescence: lift the stalls, let everything drain --- *)

let quiesce cluster citus =
  Sim.Fault.quiesce (fault_of cluster);
  Sim.Clock.advance cluster.Cluster.Topology.clock 30.0;
  for _ = 1 to 3 do
    Citus.Api.maintenance citus
  done

(* A post-storm write pass: touches every key, closing breakers that
   slow-tripped during the storm through real successes. The +0 update
   is balance-neutral by construction. *)
let write_pass citus =
  let s = Citus.Api.connect citus in
  for k = 0 to n_keys - 1 do
    ignore
      (Citus.Api.exec_with_retries citus s
         (Printf.sprintf
            "UPDATE accounts SET balance = balance + 0 WHERE key = %d" k))
  done

(* --- one full storm --- *)

let run_gray ~seed () =
  let cluster, citus = make_cluster ~seed in
  Obs.Trace.set_enabled (Cluster.Topology.trace cluster) true;
  let fault = fault_of cluster in
  let clock = cluster.Cluster.Topology.clock in
  let storm_rng = Random.State.make [| seed; 0x57a1 |] in
  let wl_rng = Random.State.make [| seed; 0x0b5e |] in
  schedule_storm cluster fault storm_rng;
  let violations = ref [] in
  let outcomes = ref [] in
  let sref = ref (Citus.Api.connect citus) in
  for i = 1 to n_stmts do
    Sim.Clock.advance clock clock_step;
    if i mod 3 = 0 then
      (* a single-shard read: the hedging path under fire *)
      read cluster citus violations sref (Random.State.int wl_rng n_keys)
    else begin
      let k1 = Random.State.int wl_rng n_keys in
      let k2 = (k1 + 1 + Random.State.int wl_rng (n_keys - 1)) mod n_keys in
      let amount = 1 + Random.State.int wl_rng 10 in
      outcomes :=
        transfer cluster citus violations sref ~k1 ~k2 ~amount :: !outcomes
    end
  done;
  quiesce cluster citus;
  write_pass citus;
  Citus.Api.maintenance citus;
  let s = Citus.Api.connect citus in
  let total = one_int s "SELECT sum(balance) FROM accounts" in
  (cluster, citus, List.rev !outcomes, List.rev !violations, total)

(* --- invariants --- *)

let check_bounded ~seed violations =
  match
    List.sort (fun (_, a, _) (_, b, _) -> compare b a) violations
  with
  | [] -> ()
  | (label, elapsed, bound) :: _ ->
    Alcotest.fail
      (Printf.sprintf
         "[seed %d] %d statement(s) overshot their deadline; worst: %s took \
          %.3fs against a %.3fs bound — a stalled node leaked into the \
          client's latency"
         seed (List.length violations) label elapsed bound)

let check_invariants ~seed cluster citus total =
  let msg m = Printf.sprintf "[seed %d] %s" seed m in
  let st = Citus.Api.coordinator_state citus in
  (* hedging never duplicated a side effect: transfers conserved the
     total exactly *)
  Alcotest.(check int) (msg "total balance conserved") expected_total total;
  (* no pinned transaction connections, no orphaned prepared pairs *)
  Alcotest.(check int) (msg "no txn conns pinned") 0
    (Citus.State.leaked_txn_conns st);
  Alcotest.(check int) (msg "no prepared pairs pinned") 0
    (Citus.State.leaked_prepared st);
  (* prepared transactions and commit records drained *)
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Alcotest.(check int)
        (msg
           (Printf.sprintf "no orphaned prepared transactions on %s"
              n.Cluster.Topology.node_name))
        0
        (List.length
           (Txn.Manager.prepared_transactions
              (Engine.Instance.txn_manager n.Cluster.Topology.instance))))
    (Cluster.Topology.all_nodes cluster);
  Alcotest.(check int) (msg "commit records drained") 0
    (Citus.Twopc.commit_record_count st);
  (* every breaker — including the ones slowness tripped — closed again *)
  List.iter
    (fun (r : Citus.Health.node_report) ->
      Alcotest.(check string)
        (msg (Printf.sprintf "breaker closed on %s" r.Citus.Health.nr_node))
        "closed"
        (Citus.Health.breaker_name
           (Citus.Health.breaker_state st.Citus.State.health
              r.Citus.Health.nr_node)))
    (Citus.Health.report st.Citus.State.health);
  (* the observability layer survived: every span opened was closed *)
  let obs = Cluster.Topology.obs cluster in
  Alcotest.(check int)
    (msg "every span opened was closed")
    (Obs.Trace.started obs.Obs.trace)
    (Obs.Trace.finished obs.Obs.trace);
  Alcotest.(check int) (msg "no span left open") 0
    (Obs.Trace.open_count obs.Obs.trace)

(* The seed matrix run by `dune runtest`. GRAY_SEEDS=n widens it; every
   check is tagged [seed N] and any failure replays by running that
   seed. *)
let gray_seeds =
  match Sys.getenv_opt "GRAY_SEEDS" with
  | None -> 8
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ ->
      invalid_arg
        (Printf.sprintf "GRAY_SEEDS must be a positive integer, got %S" v))

let seed_matrix = List.init gray_seeds (fun i -> i + 1)

(* Counters accumulated across the matrix: the boundedness check is
   vacuous if no statement ever overlapped a stall, so the last test of
   the matrix asserts the storm really bit somewhere. *)
let matrix_timeouts = ref 0
let matrix_hedges = ref 0
let matrix_deadline_awaits = ref 0

let test_seed seed () =
  let cluster, citus, outcomes, violations, total = run_gray ~seed () in
  let counter name =
    Obs.Metrics.counter_value (Cluster.Topology.metrics cluster) name
  in
  matrix_timeouts := !matrix_timeouts + counter "exec.timeouts";
  matrix_hedges := !matrix_hedges + counter "exec.hedged_reads";
  matrix_deadline_awaits := !matrix_deadline_awaits + counter "net.await_timed_out";
  check_bounded ~seed violations;
  check_invariants ~seed cluster citus total;
  (* a storm that failed every transfer would vacuously conserve the
     total *)
  Alcotest.(check bool)
    (Printf.sprintf "[seed %d] some transfers committed" seed)
    true
    (List.exists (fun o -> o = Committed) outcomes)

(* runs after the matrix (Alcotest executes cases in order, one process) *)
let test_storm_was_live () =
  Alcotest.(check bool)
    (Printf.sprintf
       "statements really hit stalls across the matrix (timeouts=%d \
        hedges=%d deadline awaits=%d)"
       !matrix_timeouts !matrix_hedges !matrix_deadline_awaits)
    true
    (!matrix_timeouts > 0 && !matrix_hedges > 0 && !matrix_deadline_awaits > 0)

(* --- bit-for-bit reproducibility --- *)

let observable (cluster, _citus, outcomes, violations, total) =
  let obs = Cluster.Topology.obs cluster in
  ( Sim.Fault.trace (fault_of cluster),
    List.map outcome_name outcomes,
    List.map (fun (l, e, _) -> Printf.sprintf "%s %.6f" l e) violations,
    total,
    Obs.Metrics.render (Obs.Metrics.snapshot obs.Obs.metrics),
    Obs.Trace.render_tree (Obs.Trace.spans obs.Obs.trace) )

let test_reproducible () =
  let trace_a, outcomes_a, viol_a, total_a, metrics_a, spans_a =
    observable (run_gray ~seed:3 ())
  in
  let trace_b, outcomes_b, viol_b, total_b, metrics_b, spans_b =
    observable (run_gray ~seed:3 ())
  in
  Alcotest.(check (list string)) "same fault trace" trace_a trace_b;
  Alcotest.(check (list string)) "same outcomes" outcomes_a outcomes_b;
  Alcotest.(check (list string)) "same overshoot list" viol_a viol_b;
  Alcotest.(check int) "same total" total_a total_b;
  Alcotest.(check string) "bit-identical metric snapshot" metrics_a metrics_b;
  Alcotest.(check (list string)) "bit-identical span tree" spans_a spans_b;
  let trace_c, _, _, _, _, _ = observable (run_gray ~seed:4 ()) in
  Alcotest.(check bool) "different seed, different storm" true
    (trace_a <> trace_c)

let () =
  Alcotest.run "gray"
    [
      ( "stall-matrix",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Quick (test_seed seed))
          seed_matrix
        @ [ Alcotest.test_case "the storm was live" `Quick test_storm_was_live ]
      );
      ( "reproducibility",
        [ Alcotest.test_case "same seed, same storm" `Quick test_reproducible ] );
    ]
