(* Distributed snapshot consistency (DESIGN.md §4h).

   Targeted tests pin the mechanism down deterministically: the
   [citus.consistency] knob, the torn read that [Eventual] permits and
   [Read_your_writes]/[Snapshot] forbid, read-triggered resolution of
   in-doubt (prepared) transactions on both the commit and the rollback
   path, per-fragment replica hedging of scatter-gather reads, and the
   deadline-bounded rebalancer move ([citus.move_timeout]).

   The chaos matrix then replays the whole story under seeded faults —
   ambient latency, brownouts, dropped round trips, commit fan-outs
   fumbled between PREPARE and COMMIT PREPARED, and worker clocks skewed
   by seconds with drift — and checks the tentpole invariant: a
   snapshot-level read either fails or returns the exact conserved
   total; it is never torn. Eventual-level reads run side by side and
   are expected to tear somewhere in the matrix (proving the windows
   were really open), and the same seed replays bit-for-bit. *)

let exec s sql = Engine.Instance.exec s sql

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | rows ->
    Alcotest.fail
      (Printf.sprintf "expected one int from %S, got %d rows" sql
         (List.length rows))

let check_int s msg expected sql =
  Alcotest.(check int) msg expected (one_int s sql)

let counter cluster name =
  Obs.Metrics.counter_value (Cluster.Topology.metrics cluster) name

let node_of citus ~table k =
  let meta = citus.Citus.Api.metadata in
  Citus.Metadata.placement meta
    (Citus.Metadata.shard_for_value meta ~table (Datum.Int k))
      .Citus.Metadata.shard_id

let two_keys_on_different_nodes citus table =
  let k1 = 1 in
  let rec find k =
    if k > 1000 then Alcotest.fail "no second node?"
    else if node_of citus ~table k <> node_of citus ~table k1 then k
    else find (k + 1)
  in
  (k1, find 2)

let n_keys = 12
let initial_balance = 100
let expected_total = n_keys * initial_balance

let setup_accounts s =
  ignore
    (exec s "CREATE TABLE accounts (key bigint PRIMARY KEY, balance bigint)");
  ignore (exec s "SELECT create_distributed_table('accounts', 'key')");
  ignore (exec s "BEGIN");
  for k = 0 to n_keys - 1 do
    ignore
      (exec s
         (Printf.sprintf "INSERT INTO accounts (key, balance) VALUES (%d, %d)"
            k initial_balance))
  done;
  ignore (exec s "COMMIT")

let sum_balances s = one_int s "SELECT sum(balance) FROM accounts"

(* Open an in-doubt window: a two-node transfer whose COMMIT PREPARED to
   [lost]'s node is fumbled — the coordinator acknowledges the commit
   (records durable), the worker keeps the prepared transaction. Returns
   (k1, k2, the node left in doubt). *)
let fumbled_transfer citus s ~amount =
  let st = Citus.Api.coordinator_state citus in
  let k1, k2 = two_keys_on_different_nodes citus "accounts" in
  let lost_node = node_of citus ~table:"accounts" k2 in
  Citus.State.inject_failure st ~node:lost_node ~matching:"COMMIT PREPARED";
  ignore (exec s "BEGIN");
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance - %d WHERE key = %d" amount k1));
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance + %d WHERE key = %d" amount k2));
  ignore (exec s "COMMIT");
  Citus.State.clear_failures st;
  (k1, k2, lost_node)

let prepared_count cluster node =
  List.length
    (Txn.Manager.prepared_transactions
       (Engine.Instance.txn_manager
          (Cluster.Topology.find_node cluster node).Cluster.Topology.instance))

(* --- the knob --- *)

let test_consistency_knob () =
  let cluster = Cluster.Topology.create ~workers:2 () in
  let citus = Citus.Api.install ~shard_count:4 cluster in
  let s = Citus.Api.connect citus in
  let st = Citus.Api.coordinator_state citus in
  Alcotest.(check string) "default is eventual" "eventual"
    (Citus.State.consistency_to_string st.Citus.State.config.Citus.State.consistency);
  ignore (exec s "SELECT citus_set_config('consistency', 'snapshot')");
  Alcotest.(check bool) "snapshot set" true
    (st.Citus.State.config.Citus.State.consistency = Citus.State.Snapshot);
  ignore (exec s "SELECT citus_set_config('consistency', 'read_your_writes')");
  Alcotest.(check bool) "read_your_writes set" true
    (st.Citus.State.config.Citus.State.consistency
    = Citus.State.Read_your_writes);
  ignore (exec s "SELECT citus_set_config('consistency', 'eventual')");
  Alcotest.(check bool) "back to eventual" true
    (st.Citus.State.config.Citus.State.consistency = Citus.State.Eventual);
  (match exec s "SELECT citus_set_config('consistency', 'strong-ish')" with
   | exception _ -> ()
   | _ -> Alcotest.fail "bad consistency value accepted");
  ignore (exec s "SELECT citus_set_config('move_timeout', '2.5')");
  Alcotest.(check (float 0.0)) "move_timeout set" 2.5
    st.Citus.State.config.Citus.State.move_timeout;
  (* string round trips *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "round trips" true
        (Citus.State.consistency_of_string (Citus.State.consistency_to_string c)
        = Some c))
    [ Citus.State.Eventual; Citus.State.Read_your_writes; Citus.State.Snapshot ]

(* --- torn at eventual, healed at stronger levels --- *)

let test_eventual_read_is_torn () =
  let cluster = Cluster.Topology.create ~workers:3 () in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  let s = Citus.Api.connect citus in
  setup_accounts s;
  let amount = 7 in
  let _, _, lost_node = fumbled_transfer citus s ~amount in
  Alcotest.(check int) "window is open" 1 (prepared_count cluster lost_node);
  (* eventual: the debit is visible, the in-doubt credit is not — the
     acknowledged distributed commit reads half-applied *)
  Alcotest.(check int) "torn total at eventual" (expected_total - amount)
    (sum_balances s);
  (* the torn read did not resolve anything *)
  Alcotest.(check int) "window still open" 1 (prepared_count cluster lost_node);
  Alcotest.(check int) "no in-doubt waits at eventual" 0
    (counter cluster Obs.Metric_names.snapshot_indoubt_waits)

let heal_test consistency () =
  let cluster = Cluster.Topology.create ~workers:3 () in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  let s = Citus.Api.connect citus in
  setup_accounts s;
  let st = Citus.Api.coordinator_state citus in
  let _, k2, lost_node = fumbled_transfer citus s ~amount:7 in
  st.Citus.State.config.Citus.State.consistency <- consistency;
  (* the reader hits the in-doubt fragment, consults the coordinator's
     commit record, finishes the COMMIT PREPARED itself and retries *)
  Alcotest.(check int) "total conserved" expected_total (sum_balances s);
  Alcotest.(check bool) "reader blocked on the in-doubt window" true
    (counter cluster Obs.Metric_names.snapshot_indoubt_waits > 0);
  Alcotest.(check bool) "resolved by committing" true
    (counter cluster Obs.Metric_names.snapshot_indoubt_commits > 0);
  Alcotest.(check bool) "read retried after resolution" true
    (counter cluster Obs.Metric_names.snapshot_read_retries > 0);
  Alcotest.(check int) "window drained by the read" 0
    (prepared_count cluster lost_node);
  check_int s "credit visible after resolution" 107
    (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k2);
  (* a second read finds nothing in doubt *)
  let waits = counter cluster Obs.Metric_names.snapshot_indoubt_waits in
  Alcotest.(check int) "still conserved" expected_total (sum_balances s);
  Alcotest.(check int) "no further blocking" waits
    (counter cluster Obs.Metric_names.snapshot_indoubt_waits);
  Citus.Api.maintenance citus;
  Alcotest.(check int) "commit records drained" 0
    (Citus.Twopc.commit_record_count st)

let test_read_your_writes_heals () = heal_test Citus.State.Read_your_writes ()
let test_snapshot_heals () = heal_test Citus.State.Snapshot ()

let test_snapshot_resolves_aborted_orphan () =
  (* the other 2PC outcome: the coordinator aborted (no commit record),
     a worker keeps an orphaned prepared transaction — a snapshot reader
     rolls it back instead of waiting for the recovery daemon *)
  let cluster = Cluster.Topology.create ~workers:3 () in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  let s = Citus.Api.connect citus in
  setup_accounts s;
  let st = Citus.Api.coordinator_state citus in
  let k1, k2 = two_keys_on_different_nodes citus "accounts" in
  (* connections are visited newest-first at commit, so k2's node
     prepares first; failing k1's PREPARE aborts the 2PC and the
     injected ROLLBACK PREPARED failure orphans k2's prepared txn *)
  Citus.State.inject_failure st
    ~node:(node_of citus ~table:"accounts" k1)
    ~matching:"PREPARE TRANSACTION";
  Citus.State.inject_failure st
    ~node:(node_of citus ~table:"accounts" k2)
    ~matching:"ROLLBACK PREPARED";
  ignore (exec s "BEGIN");
  ignore
    (exec s
       (Printf.sprintf "UPDATE accounts SET balance = balance - 7 WHERE key = %d"
          k1));
  ignore
    (exec s
       (Printf.sprintf "UPDATE accounts SET balance = balance + 7 WHERE key = %d"
          k2));
  (match exec s "COMMIT" with _ -> () | exception _ -> ());
  ignore (try ignore (exec s "ROLLBACK") with _ -> ());
  Citus.State.clear_failures st;
  Alcotest.(check int) "orphan pending" 1
    (prepared_count cluster (node_of citus ~table:"accounts" k2));
  st.Citus.State.config.Citus.State.consistency <- Citus.State.Snapshot;
  Alcotest.(check int) "aborted transfer fully invisible" expected_total
    (sum_balances s);
  Alcotest.(check bool) "resolved by rolling back" true
    (counter cluster Obs.Metric_names.snapshot_indoubt_rollbacks > 0);
  Alcotest.(check int) "orphan drained" 0
    (prepared_count cluster (node_of citus ~table:"accounts" k2))

(* --- per-fragment replica hedging --- *)

let test_scatter_gather_fragment_hedging () =
  let cluster =
    Cluster.Topology.create ~workers:3 ~fault_seed:11 ~sched_seed:11 ()
  in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  Citus.Api.set_replication_factor citus 2;
  let s = Citus.Api.connect citus in
  setup_accounts s;
  let st = Citus.Api.coordinator_state citus in
  st.Citus.State.config.Citus.State.hedge_threshold <- 0.05;
  st.Citus.State.config.Citus.State.consistency <- Citus.State.Snapshot;
  let fault =
    match Cluster.Topology.fault cluster with
    | Some f -> f
    | None -> Alcotest.fail "no fault plan"
  in
  (* one worker browns out: its fragments of the scatter-gather read
     sit past the hedge threshold, each hedges to the other replica
     independently, and the slow replica never delays the answer *)
  Sim.Fault.stall_node fault ~node:"worker1" ~extra:1.0 ~duration:1000.0;
  Alcotest.(check int) "hedged read still exact" expected_total
    (sum_balances s);
  Alcotest.(check bool) "fragments hedged" true
    (counter cluster Obs.Metric_names.exec_hedged_reads > 0);
  Alcotest.(check bool) "multi-shard fragments counted" true
    (counter cluster Obs.Metric_names.snapshot_hedged_fragments > 0);
  Alcotest.(check bool) "a hedge won" true
    (counter cluster Obs.Metric_names.snapshot_fragment_hedge_wins > 0);
  (* writes never hedge, stalled replica or not *)
  let hedges = counter cluster Obs.Metric_names.exec_hedged_reads in
  ignore (exec s "UPDATE accounts SET balance = balance + 0 WHERE key = 1");
  Alcotest.(check int) "writes never hedge" hedges
    (counter cluster Obs.Metric_names.exec_hedged_reads)

(* --- deadline-bounded rebalancer moves --- *)

let test_move_timeout_abandons_cleanly () =
  let cluster =
    Cluster.Topology.create ~workers:2 ~fault_seed:5 ~sched_seed:5 ()
  in
  let citus = Citus.Api.install ~shard_count:4 cluster in
  let s = Citus.Api.connect citus in
  ignore (exec s "CREATE TABLE t (k bigint, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  for i = 1 to 40 do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, %d)" i i))
  done;
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let shard = List.hd (Citus.Metadata.shards_of meta "t") in
  let shard_id = shard.Citus.Metadata.shard_id in
  let from_node = Citus.Metadata.placement meta shard_id in
  let to_node = if from_node = "worker1" then "worker2" else "worker1" in
  let fault =
    match Cluster.Topology.fault cluster with
    | Some f -> f
    | None -> Alcotest.fail "no fault plan"
  in
  (* the destination stalls far past the move budget *)
  Sim.Fault.stall_node fault ~node:to_node ~extra:5.0 ~duration:1000.0;
  st.Citus.State.config.Citus.State.move_timeout <- 1.0;
  (match Citus.Rebalancer.move_shard_group st ~shard_id ~to_node with
   | _ -> Alcotest.fail "move should have timed out"
   | exception Cluster.Connection.Timed_out _ -> ());
  Alcotest.(check int) "timeout counted" 1
    (counter cluster Obs.Metric_names.rebalance_move_timeouts);
  (* abandoned cleanly: source placement untouched, no trace of the
     partial copy on the destination *)
  Alcotest.(check string) "placement unchanged" from_node
    (Citus.Metadata.placement meta shard_id);
  Alcotest.(check bool) "no placement on destination" true
    (Citus.Metadata.placement_state_of meta ~shard_id ~node:to_node = None);
  Alcotest.(check bool) "partial copy fenced off" true
    (Engine.Catalog.find_table_opt
       (Engine.Instance.catalog
          (Cluster.Topology.find_node cluster to_node).Cluster.Topology.instance)
       (Citus.Metadata.shard_name shard)
    = None);
  check_int s "data intact" 40 "SELECT count(*) FROM t";
  (* the stall lifts; the same move now completes *)
  Sim.Fault.quiesce fault;
  let m = Citus.Rebalancer.move_shard_group st ~shard_id ~to_node in
  Alcotest.(check string) "moved after heal" to_node m.Citus.Rebalancer.to_node;
  Alcotest.(check string) "placement flipped" to_node
    (Citus.Metadata.placement meta shard_id);
  check_int s "data intact after move" 40 "SELECT count(*) FROM t"

let test_move_timeout_rolls_back_group () =
  (* a timeout in the middle of a colocation group: the first sibling
     had already cut over — it must be copied back so the group is
     never split across nodes *)
  let cluster =
    Cluster.Topology.create ~workers:2 ~fault_seed:6 ~sched_seed:6 ()
  in
  let citus = Citus.Api.install ~shard_count:4 cluster in
  let s = Citus.Api.connect citus in
  ignore (exec s "CREATE TABLE t (k bigint, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "CREATE TABLE u (k bigint, w bigint)");
  ignore (exec s "SELECT create_distributed_table('u', 'k', 't')");
  ignore (exec s "INSERT INTO t (k, v) VALUES (1, 10)");
  ignore (exec s "INSERT INTO u (k, w) VALUES (1, 20)");
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let shard = Citus.Metadata.shard_for_value meta ~table:"t" (Datum.Int 1) in
  let shard_id = shard.Citus.Metadata.shard_id in
  let from_node = Citus.Metadata.placement meta shard_id in
  let to_node = if from_node = "worker1" then "worker2" else "worker1" in
  let fault =
    match Cluster.Topology.fault cluster with
    | Some f -> f
    | None -> Alcotest.fail "no fault plan"
  in
  (* each destination round trip costs exactly 0.4s; the tables have no
     indexes, so each shard copy is one CREATE TABLE round trip: the
     first sibling lands at 0.4s (inside the 0.6s budget) and cuts
     over, the second would land at 0.8s and the deadline fires *)
  Sim.Fault.set_latency ~node:to_node fault ~mean:0.4 ~jitter:0.0;
  st.Citus.State.config.Citus.State.move_timeout <- 0.6;
  (match Citus.Rebalancer.move_shard_group st ~shard_id ~to_node with
   | _ -> Alcotest.fail "group move should have timed out"
   | exception Cluster.Connection.Timed_out _ -> ());
  Alcotest.(check int) "timeout counted" 1
    (counter cluster Obs.Metric_names.rebalance_move_timeouts);
  (* both siblings ended up back where they started *)
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      Alcotest.(check string)
        (Printf.sprintf "shard %d back on the source" sh.Citus.Metadata.shard_id)
        from_node
        (Citus.Metadata.placement meta sh.Citus.Metadata.shard_id))
    (Citus.Metadata.colocated_shards meta shard);
  check_int s "colocated join survives the abandoned move" 1
    "SELECT count(*) FROM t JOIN u ON t.k = u.k WHERE t.k = 1";
  (* with the latency gone the group moves as one *)
  Sim.Fault.quiesce fault;
  let m = Citus.Rebalancer.move_shard_group st ~shard_id ~to_node in
  Alcotest.(check int) "both siblings moved" 2
    (List.length m.Citus.Rebalancer.moved_shards)

(* --- the chaos matrix: skewed clocks, fumbled commits, no torn reads --- *)

let n_stmts = 30
let clock_step = 0.25
let timeout = 0.5

type outcome = Committed | Failed | Unknown

let outcome_name = function
  | Committed -> "committed"
  | Failed -> "failed"
  | Unknown -> "unknown"

let fault_of cluster =
  match Cluster.Topology.fault cluster with
  | Some f -> f
  | None -> Alcotest.fail "cluster has no fault plan"

let make_chaos_cluster ~seed =
  let cluster =
    Cluster.Topology.create ~workers:3 ~fault_seed:seed ~sched_seed:seed ()
  in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  Citus.Api.set_replication_factor citus 2;
  let st = Citus.Api.coordinator_state citus in
  st.Citus.State.config.Citus.State.statement_timeout <- timeout;
  st.Citus.State.config.Citus.State.hedge_threshold <- 0.05;
  let s = Citus.Api.connect citus in
  ignore
    (exec s "CREATE TABLE accounts (key bigint PRIMARY KEY, balance bigint)");
  ignore (exec s "SELECT create_distributed_table('accounts', 'key')");
  ignore (exec s "BEGIN");
  for k = 0 to n_keys - 1 do
    ignore
      (exec s
         (Printf.sprintf "INSERT INTO accounts (key, balance) VALUES (%d, %d)"
            k initial_balance))
  done;
  ignore (exec s "COMMIT");
  (cluster, citus)

let schedule_storm cluster fault rng =
  let workers =
    List.map
      (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
      cluster.Cluster.Topology.workers
  in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let horizon = float_of_int n_stmts *. clock_step in
  Sim.Fault.set_latency fault ~mean:0.005 ~jitter:0.005;
  Sim.Fault.set_drop_rate fault ~request:0.02 ~reply:0.02;
  (* worker clocks bend by whole seconds, with drift — far beyond any
     commit latency, so uncorrected timestamps would order commits
     wildly wrong across nodes *)
  for _ = 1 to 2 do
    let at = Random.State.float rng (horizon *. 0.5) in
    let offset = Random.State.float rng 6.0 -. 3.0 in
    let drift = Random.State.float rng 0.1 -. 0.05 in
    Sim.Fault.schedule_skew fault ~at ~offset ~drift (pick workers)
  done;
  (* one brownout, to push reads onto the hedging path *)
  let at = Random.State.float rng (horizon *. 0.8) in
  Sim.Fault.schedule_stall fault ~at ~extra:1.5 ~duration:1.0 (pick workers)

let ensure_session citus sref =
  if not (Engine.Instance.session_alive !sref) then
    sref := Citus.Api.connect citus

let rollback_quietly s = try ignore (exec s "ROLLBACK") with _ -> ()

(* A transfer; with probability ~1/4 its COMMIT PREPARED fan-out to one
   worker is fumbled (injected failure, cleared right after), leaving an
   in-doubt window that persists until a reader resolves it. *)
let chaos_transfer citus st rng sref ~k1 ~k2 ~amount =
  ensure_session citus sref;
  let s = !sref in
  let fumble =
    if Random.State.int rng 4 = 0 then begin
      let w = Printf.sprintf "worker%d" (1 + Random.State.int rng 3) in
      Citus.State.inject_failure st ~node:w ~matching:"COMMIT PREPARED";
      true
    end
    else false
  in
  let stmt sql = match exec s sql with _ -> true | exception _ -> false in
  let outcome =
    if
      stmt "BEGIN"
      && stmt
           (Printf.sprintf
              "UPDATE accounts SET balance = balance - %d WHERE key = %d"
              amount k1)
      && stmt
           (Printf.sprintf
              "UPDATE accounts SET balance = balance + %d WHERE key = %d"
              amount k2)
    then
      if stmt "COMMIT" then Committed
      else begin
        rollback_quietly s;
        Unknown
      end
    else begin
      rollback_quietly s;
      Failed
    end
  in
  if fumble then Citus.State.clear_failures st;
  outcome

(* One scatter-gather sum at the given consistency level. *)
let read_total citus st sref level =
  ensure_session citus sref;
  let s = !sref in
  let saved = st.Citus.State.config.Citus.State.consistency in
  st.Citus.State.config.Citus.State.consistency <- level;
  let r =
    match sum_balances s with
    | total -> Ok total
    | exception _ ->
      rollback_quietly s;
      Error ()
  in
  st.Citus.State.config.Citus.State.consistency <- saved;
  r

let quiesce cluster citus =
  Citus.State.clear_failures (Citus.Api.coordinator_state citus);
  Sim.Fault.quiesce (fault_of cluster);
  Sim.Clock.advance cluster.Cluster.Topology.clock 30.0;
  for _ = 1 to 3 do
    Citus.Api.maintenance citus
  done

let run_chaos ~seed () =
  let cluster, citus = make_chaos_cluster ~seed in
  Obs.Trace.set_enabled (Cluster.Topology.trace cluster) true;
  let st = Citus.Api.coordinator_state citus in
  let fault = fault_of cluster in
  let clock = cluster.Cluster.Topology.clock in
  let storm_rng = Random.State.make [| seed; 0x5caf |] in
  let wl_rng = Random.State.make [| seed; 0x0b5e |] in
  schedule_storm cluster fault storm_rng;
  st.Citus.State.config.Citus.State.consistency <- Citus.State.Snapshot;
  let outcomes = ref [] in
  let reads = ref [] in
  let torn = ref 0 in
  let sref = ref (Citus.Api.connect citus) in
  for i = 1 to n_stmts do
    Sim.Clock.advance clock clock_step;
    if i mod 3 = 0 then begin
      (* eventual first: it may tear, and it never resolves the windows
         the snapshot read is about to hit *)
      (match read_total citus st sref Citus.State.Eventual with
       | Ok t when t <> expected_total -> incr torn
       | _ -> ());
      let r =
        match read_total citus st sref Citus.State.Snapshot with
        | Ok total ->
          (* the tentpole invariant: a snapshot read that answers at all
             answers exactly — under fumbled commits and skewed clocks *)
          if total <> expected_total then
            Alcotest.fail
              (Printf.sprintf
                 "[seed %d] torn snapshot read at stmt %d: got %d, want %d"
                 seed i total expected_total);
          Printf.sprintf "ok %d" total
        | Error () -> "failed"
      in
      reads := r :: !reads
    end
    else begin
      let k1 = Random.State.int wl_rng n_keys in
      let k2 = (k1 + 1 + Random.State.int wl_rng (n_keys - 1)) mod n_keys in
      let amount = 1 + Random.State.int wl_rng 10 in
      outcomes :=
        chaos_transfer citus st wl_rng sref ~k1 ~k2 ~amount :: !outcomes
    end
  done;
  quiesce cluster citus;
  let s = Citus.Api.connect citus in
  let total = sum_balances s in
  (cluster, citus, List.rev !outcomes, List.rev !reads, !torn, total)

let check_chaos_invariants ~seed cluster citus total =
  let msg m = Printf.sprintf "[seed %d] %s" seed m in
  let st = Citus.Api.coordinator_state citus in
  Alcotest.(check int) (msg "total conserved after quiescence") expected_total
    total;
  Alcotest.(check int) (msg "no txn conns pinned") 0
    (Citus.State.leaked_txn_conns st);
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Alcotest.(check int)
        (msg
           (Printf.sprintf "no orphaned prepared transactions on %s"
              n.Cluster.Topology.node_name))
        0
        (prepared_count cluster n.Cluster.Topology.node_name))
    (Cluster.Topology.all_nodes cluster);
  Alcotest.(check int) (msg "commit records drained") 0
    (Citus.Twopc.commit_record_count st);
  let obs = Cluster.Topology.obs cluster in
  Alcotest.(check int)
    (msg "every span opened was closed")
    (Obs.Trace.started obs.Obs.trace)
    (Obs.Trace.finished obs.Obs.trace)

let snapshot_seeds =
  match Sys.getenv_opt "SNAPSHOT_SEEDS" with
  | None -> 6
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ ->
      invalid_arg
        (Printf.sprintf "SNAPSHOT_SEEDS must be a positive integer, got %S" v))

let seed_matrix = List.init snapshot_seeds (fun i -> i + 1)

(* Accumulated across the matrix: the no-torn-read check is vacuous
   unless readers really hit open in-doubt windows somewhere, and the
   eventual-level tear proves the windows were observable. *)
let m_indoubt_waits = ref 0
let m_resolved = ref 0
let m_snapshot_reads = ref 0
let m_torn_eventual = ref 0
let m_hedged = ref 0

let test_seed seed () =
  let cluster, citus, outcomes, reads, torn, total = run_chaos ~seed () in
  let c name = counter cluster name in
  m_indoubt_waits := !m_indoubt_waits + c Obs.Metric_names.snapshot_indoubt_waits;
  m_resolved :=
    !m_resolved
    + c Obs.Metric_names.snapshot_indoubt_commits
    + c Obs.Metric_names.snapshot_indoubt_rollbacks;
  m_snapshot_reads := !m_snapshot_reads + c Obs.Metric_names.snapshot_reads;
  m_torn_eventual := !m_torn_eventual + torn;
  m_hedged := !m_hedged + c Obs.Metric_names.snapshot_hedged_fragments;
  check_chaos_invariants ~seed cluster citus total;
  Alcotest.(check bool)
    (Printf.sprintf "[seed %d] some transfers committed" seed)
    true
    (List.exists (fun o -> o = Committed) outcomes);
  Alcotest.(check bool)
    (Printf.sprintf "[seed %d] some snapshot reads answered" seed)
    true
    (List.exists (fun r -> r <> "failed") reads)

(* runs after the matrix (Alcotest executes cases in order, one process) *)
let test_storm_was_live () =
  Alcotest.(check bool)
    (Printf.sprintf
       "readers really hit open in-doubt windows across the matrix \
        (waits=%d resolved=%d snapshot reads=%d torn eventual reads=%d \
        hedged fragments=%d)"
       !m_indoubt_waits !m_resolved !m_snapshot_reads !m_torn_eventual
       !m_hedged)
    true
    (!m_indoubt_waits > 0 && !m_resolved > 0 && !m_snapshot_reads > 0
   && !m_torn_eventual > 0)

(* --- bit-for-bit reproducibility --- *)

let observable (cluster, _citus, outcomes, reads, torn, total) =
  let obs = Cluster.Topology.obs cluster in
  ( Sim.Fault.trace (fault_of cluster),
    List.map outcome_name outcomes,
    reads,
    torn,
    total,
    Obs.Metrics.render (Obs.Metrics.snapshot obs.Obs.metrics),
    Obs.Trace.render_tree (Obs.Trace.spans obs.Obs.trace) )

let test_reproducible () =
  let trace_a, out_a, reads_a, torn_a, total_a, metrics_a, spans_a =
    observable (run_chaos ~seed:2 ())
  in
  let trace_b, out_b, reads_b, torn_b, total_b, metrics_b, spans_b =
    observable (run_chaos ~seed:2 ())
  in
  Alcotest.(check (list string)) "same fault trace" trace_a trace_b;
  Alcotest.(check (list string)) "same outcomes" out_a out_b;
  Alcotest.(check (list string)) "same read results" reads_a reads_b;
  Alcotest.(check int) "same torn count" torn_a torn_b;
  Alcotest.(check int) "same total" total_a total_b;
  Alcotest.(check string) "bit-identical metric snapshot" metrics_a metrics_b;
  Alcotest.(check (list string)) "bit-identical span tree" spans_a spans_b;
  let trace_c, _, _, _, _, _, _ = observable (run_chaos ~seed:5 ()) in
  Alcotest.(check bool) "different seed, different storm" true
    (trace_a <> trace_c)

let () =
  Alcotest.run "snapshot"
    [
      ( "knob",
        [ Alcotest.test_case "citus_set_config" `Quick test_consistency_knob ] );
      ( "consistency-levels",
        [
          Alcotest.test_case "eventual read is torn" `Quick
            test_eventual_read_is_torn;
          Alcotest.test_case "read_your_writes heals" `Quick
            test_read_your_writes_heals;
          Alcotest.test_case "snapshot heals" `Quick test_snapshot_heals;
          Alcotest.test_case "aborted orphan rolled back" `Quick
            test_snapshot_resolves_aborted_orphan;
        ] );
      ( "hedging",
        [
          Alcotest.test_case "per-fragment scatter-gather hedging" `Quick
            test_scatter_gather_fragment_hedging;
        ] );
      ( "move-timeout",
        [
          Alcotest.test_case "abandons cleanly" `Quick
            test_move_timeout_abandons_cleanly;
          Alcotest.test_case "rolls back the group" `Quick
            test_move_timeout_rolls_back_group;
        ] );
      ( "skew-matrix",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Quick (test_seed seed))
          seed_matrix
        @ [ Alcotest.test_case "the storm was live" `Quick test_storm_was_live ]
      );
      ( "reproducibility",
        [ Alcotest.test_case "same seed, same storm" `Quick test_reproducible ]
      );
    ]
