(* Tenant isolation, consistent restore points, EXPLAIN, adaptive-executor
   timeline, and the sim cost model. *)

let make ?(workers = 2) ?(shard_count = 8) () =
  let cluster = Cluster.Topology.create ~workers () in
  let citus = Citus.Api.install ~shard_count cluster in
  let s = Citus.Api.connect citus in
  (cluster, citus, s)

let exec s sql = Engine.Instance.exec s sql

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | _ -> Alcotest.fail ("no int from " ^ sql)

let check_int s msg expected sql = Alcotest.(check int) msg expected (one_int s sql)

(* --- tenant isolation --- *)

let setup_tenants s =
  ignore (exec s "CREATE TABLE accounts (tenant bigint, id bigint, v text)");
  ignore (exec s "SELECT create_distributed_table('accounts', 'tenant')");
  ignore (exec s "CREATE TABLE notes (tenant bigint, note text)");
  ignore (exec s "SELECT create_distributed_table('notes', 'tenant', 'accounts')");
  ignore (exec s "BEGIN");
  for tenant = 1 to 10 do
    for i = 1 to 5 do
      ignore
        (exec s
           (Printf.sprintf
              "INSERT INTO accounts (tenant, id, v) VALUES (%d, %d, 't%d')" tenant
              i tenant));
      ignore
        (exec s
           (Printf.sprintf "INSERT INTO notes (tenant, note) VALUES (%d, 'n')" tenant))
    done
  done;
  ignore (exec s "COMMIT")

let test_isolate_tenant () =
  let _, citus, s = make () in
  setup_tenants s;
  let st = Citus.Api.coordinator_state citus in
  let before_shards =
    List.length (Citus.Metadata.shards_of citus.Citus.Api.metadata "accounts")
  in
  let ids = Citus.Tenant.isolate_tenant st ~table:"accounts" ~value:(Datum.Int 7) in
  Alcotest.(check int) "one new shard per colocated table" 2 (List.length ids);
  let meta = citus.Citus.Api.metadata in
  (* the tenant's shard now covers exactly its hash *)
  let tenant_shard =
    Citus.Metadata.shard_for_value meta ~table:"accounts" (Datum.Int 7)
  in
  Alcotest.(check int) "tenant shard id" (List.hd ids)
    tenant_shard.Citus.Metadata.shard_id;
  Alcotest.(check int32) "point range" tenant_shard.Citus.Metadata.min_hash
    tenant_shard.Citus.Metadata.max_hash;
  Alcotest.(check bool) "more shards than before" true
    (List.length (Citus.Metadata.shards_of meta "accounts") > before_shards);
  (* all data is still reachable and correct *)
  check_int s "tenant rows intact" 5
    "SELECT count(*) FROM accounts WHERE tenant = 7";
  check_int s "all rows intact" 50 "SELECT count(*) FROM accounts";
  check_int s "colocated join still works" 25
    "SELECT count(*) FROM accounts JOIN notes ON accounts.tenant = notes.tenant \
     WHERE accounts.tenant = 7";
  (* colocation invariant: ranges still tile and groups still align *)
  Alcotest.(check bool) "still colocated" true
    (Citus.Metadata.colocated meta [ "accounts"; "notes" ])

let test_isolate_then_move () =
  let _, citus, s = make () in
  setup_tenants s;
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let before =
    Citus.Metadata.placement meta
      (Citus.Metadata.shard_for_value meta ~table:"accounts" (Datum.Int 3))
        .Citus.Metadata.shard_id
  in
  let to_node = if before = "worker1" then "worker2" else "worker1" in
  let m =
    Citus.Tenant.isolate_tenant_to_node st ~table:"accounts" ~value:(Datum.Int 3)
      ~to_node
  in
  Alcotest.(check string) "moved" to_node m.Citus.Rebalancer.to_node;
  check_int s "data intact after isolate+move" 5
    "SELECT count(*) FROM accounts WHERE tenant = 3";
  check_int s "all rows" 50 "SELECT count(*) FROM accounts"

let test_isolate_via_udf () =
  let _, _, s = make () in
  setup_tenants s;
  match
    (exec s "SELECT isolate_tenant_to_new_shard('accounts', 5)").Engine.Instance.rows
  with
  | [ [| Datum.Int _ |] ] ->
    check_int s "data intact" 50 "SELECT count(*) FROM accounts"
  | _ -> Alcotest.fail "udf failed"

(* --- consistent restore points --- *)

let test_restore_point_on_all_nodes () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "SELECT citus_create_restore_point('backup1')");
  let st = Citus.Api.coordinator_state citus in
  Alcotest.(check bool) "consistent" true
    (Citus.Backup.restore_point_is_consistent st "backup1");
  List.iter
    (fun (_node, pos) ->
      Alcotest.(check bool) "present" true (pos <> None))
    (Citus.Backup.restore_point_positions st "backup1")

let test_restore_point_fails_when_partitioned () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  let st = Citus.Api.coordinator_state citus in
  Citus.State.partition_node st "worker2";
  (match exec s "SELECT citus_create_restore_point('backup2')" with
   | exception _ -> ()
   | _ -> Alcotest.fail "restore point must fail with an unreachable node");
  Citus.State.heal_node st "worker2";
  Alcotest.(check bool) "not consistent" false
    (Citus.Backup.restore_point_is_consistent st "backup2")

(* --- node failures during queries --- *)

let test_worker_failure_mid_query () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "BEGIN");
  for i = 1 to 20 do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, %d)" i i))
  done;
  ignore (exec s "COMMIT");
  let st = Citus.Api.coordinator_state citus in
  Citus.State.partition_node st "worker2";
  (* a multi-shard query must fail with a clean session error, not a stuck
     session *)
  (match exec s "SELECT count(*) FROM t" with
   | exception Engine.Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "query should fail while a worker is down");
  Citus.State.heal_node st "worker2";
  (* the session recovers and answers correctly *)
  check_int s "after heal" 20 "SELECT count(*) FROM t";
  (* and writes still work *)
  ignore (exec s "INSERT INTO t (k, v) VALUES (100, 1)");
  check_int s "write after heal" 21 "SELECT count(*) FROM t"

(* --- EXPLAIN --- *)

let contains ~needle hay =
  Engine.Expr_eval.like_match ~pattern:("%" ^ needle ^ "%") ~ci:true hay

let test_explain_tiers () =
  let _, _citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  let explain sql =
    match
      (exec s (Printf.sprintf "SELECT citus_explain('%s')" sql))
        .Engine.Instance.rows
    with
    | [ [| Datum.Text e |] ] -> e
    | _ -> Alcotest.fail "no explain output"
  in
  Alcotest.(check bool) "fast path" true
    (contains ~needle:"fast path" (explain "SELECT * FROM t WHERE k = 1"));
  Alcotest.(check bool) "pushdown" true
    (contains ~needle:"logical pushdown" (explain "SELECT count(*) FROM t"));
  Alcotest.(check bool) "merge shown" true
    (contains ~needle:"Merge step" (explain "SELECT count(*) FROM t"));
  Alcotest.(check bool) "task fanout" true
    (contains ~needle:"Tasks: 8" (explain "SELECT count(*) FROM t"));
  Alcotest.(check bool) "local" true
    (contains ~needle:"Local execution" (explain "SELECT 1"))

let test_explain_join_order () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE big (k bigint, cat bigint)");
  ignore (exec s "SELECT create_distributed_table('big', 'k')");
  ignore (exec s "CREATE TABLE small (id bigint, cat bigint)");
  ignore (exec s "SELECT create_distributed_table('small', 'id')");
  ignore (exec s "INSERT INTO small (id, cat) VALUES (1, 1), (2, 2)");
  let st = Citus.Api.coordinator_state citus in
  let out =
    Citus.Explain.explain st
      "SELECT count(*) FROM big JOIN small ON big.cat = small.cat"
  in
  Alcotest.(check bool) "names the planner" true
    (contains ~needle:"join-order" out);
  Alcotest.(check bool) "names the anchor" true (contains ~needle:"Anchor" out)

(* --- introspection --- *)

let test_citus_shards_introspection () =
  let _, _, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "CREATE TABLE d (id bigint)");
  ignore (exec s "SELECT create_reference_table('d')");
  (match (exec s "SELECT citus_shards()").Engine.Instance.rows with
   | [ [| Datum.Json (Json.Arr shards) |] ] ->
     Alcotest.(check int) "8 dist shards + 1 reference shard" 9
       (List.length shards)
   | _ -> Alcotest.fail "citus_shards failed");
  match (exec s "SELECT citus_tables()").Engine.Instance.rows with
  | [ [| Datum.Json (Json.Arr tables) |] ] ->
    Alcotest.(check int) "two citus tables" 2 (List.length tables);
    let kinds =
      List.filter_map
        (fun t ->
          match Json.get_field t "kind" with
          | Some (Json.Str k) -> Some k
          | _ -> None)
        tables
      |> List.sort String.compare
    in
    Alcotest.(check (list string)) "kinds" [ "distributed"; "reference" ] kinds
  | _ -> Alcotest.fail "citus_tables failed"

let test_subquery_on_reference_table_allowed () =
  (* subqueries over reference tables are shard-local (every node has the
     replica) and therefore fine inside multi-shard queries *)
  let _, _, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint, cat bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "CREATE TABLE allowed (cat bigint)");
  ignore (exec s "SELECT create_reference_table('allowed')");
  ignore (exec s "INSERT INTO allowed VALUES (1), (3)");
  ignore (exec s "BEGIN");
  for i = 1 to 20 do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, cat) VALUES (%d, %d)" i (i mod 5)))
  done;
  ignore (exec s "COMMIT");
  check_int s "IN over reference" 8
    "SELECT count(*) FROM t WHERE cat IN (SELECT cat FROM allowed)"

(* --- adaptive executor: slow start measured on the virtual clock --- *)

(* A distributed table with enough rows that a shard-local read has a
   measurable modeled cost, plus a fresh session (empty pools) to run
   hand-built task lists through the real executor. *)
let exec_fixture ?(rows = 64) () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "BEGIN");
  for i = 1 to rows do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, %d)" i i))
  done;
  ignore (exec s "COMMIT");
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let shard =
    match Citus.Metadata.shards_of meta "t" with
    | s :: _ -> s
    | [] -> Alcotest.fail "no shards"
  in
  (st, Citus.Api.connect citus, meta, shard)

(* [n] identical shard-local reads of the same placement: every task
   competes for connections to one node, which is exactly the slow-start
   ramp's worst case *)
let read_tasks meta (shard : Citus.Metadata.shard) n =
  List.init n (fun _ ->
      {
        Citus.Plan.task_node =
          Citus.Metadata.placement meta shard.Citus.Metadata.shard_id;
        task_stmt =
          (Sqlfront.Parser.parse_statement
             (Printf.sprintf "SELECT count(*) FROM %s"
                (Citus.Metadata.shard_name shard)) [@lint.sql_static]);
        task_group = shard.Citus.Metadata.index_in_colocation;
        task_shard = shard.Citus.Metadata.shard_id;
      })

let total_conns (r : Citus.Adaptive_executor.report) =
  List.fold_left (fun acc (_, c) -> acc + c) 0
    r.Citus.Adaptive_executor.connections_used

let test_slow_start_single_fast_task () =
  (* one task finishes on the first connection before a second would
     open: effective connections = 1 and the measured makespan is the
     task's own duration *)
  let st, s, meta, shard = exec_fixture () in
  let _, r = Citus.Adaptive_executor.execute st s (read_tasks meta shard 1) in
  Alcotest.(check int) "one connection" 1 (total_conns r);
  Alcotest.(check bool) "fragment cost is real" true
    (r.Citus.Adaptive_executor.makespan > 0.0);
  Alcotest.(check (float 1e-9)) "makespan = the task's duration"
    r.Citus.Adaptive_executor.serial_time r.Citus.Adaptive_executor.makespan

let test_slow_start_many_fast_tasks_stay_serial () =
  (* a ramp interval far beyond the workload: the first connection clears
     all 8 tasks before the second's gate opens — serial, one connection *)
  let st, s, meta, shard = exec_fixture () in
  st.Citus.State.config.Citus.State.slow_start_interval <- 10.0;
  let _, r = Citus.Adaptive_executor.execute st s (read_tasks meta shard 8) in
  Alcotest.(check int) "one connection" 1 (total_conns r);
  Alcotest.(check (float 1e-9)) "fully serial: makespan = sum of durations"
    r.Citus.Adaptive_executor.serial_time r.Citus.Adaptive_executor.makespan

let test_slow_start_long_tasks_ramp_up () =
  (* no ramp delay: all 8 tasks get their own connection and overlap, so
     the measured makespan collapses toward the longest fragment *)
  let st, s, meta, shard = exec_fixture () in
  st.Citus.State.config.Citus.State.slow_start_interval <- 0.0;
  let _, r = Citus.Adaptive_executor.execute st s (read_tasks meta shard 8) in
  Alcotest.(check int) "all parallel" 8 (total_conns r);
  Alcotest.(check bool) "makespan well under serial time" true
    (r.Citus.Adaptive_executor.makespan
     < 0.5 *. r.Citus.Adaptive_executor.serial_time);
  (* the ramp is visible in the report: 8 opens, all at the start *)
  match r.Citus.Adaptive_executor.conn_opened_at with
  | [ (_, opens) ] -> Alcotest.(check int) "eight opens" 8 (List.length opens)
  | other ->
    Alcotest.failf "expected one node in conn_opened_at, got %d"
      (List.length other)

let test_shared_limit_caps_connections () =
  (* pool capped at 4: the 16 tasks drain through 4 connections *)
  let st, s, meta, shard = exec_fixture () in
  st.Citus.State.config.Citus.State.slow_start_interval <- 0.0;
  st.Citus.State.config.Citus.State.pool_size_per_node <- 4;
  let _, r = Citus.Adaptive_executor.execute st s (read_tasks meta shard 16) in
  Alcotest.(check int) "capped" 4 (total_conns r)

let test_connection_affinity_within_txn () =
  (* §3.6.1: inside a transaction, later statements touching the same
     shard group must reuse the connection that holds its uncommitted
     writes *)
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "INSERT INTO t (k, v) VALUES (1, 0), (2, 0), (3, 0)");
  let st = Citus.Api.coordinator_state citus in
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE t SET v = 1 WHERE k = 1");
  let sst = Citus.State.session_state st s in
  let affinity_before = List.length sst.Citus.State.affinity in
  Alcotest.(check bool) "affinity recorded" true (affinity_before >= 1);
  (* the own uncommitted write is visible through the same connection *)
  check_int s "own write visible" 1 "SELECT v FROM t WHERE k = 1";
  ignore (exec s "UPDATE t SET v = v + 1 WHERE k = 1");
  check_int s "chained" 2 "SELECT v FROM t WHERE k = 1";
  (* the number of distinct txn connections equals nodes touched, not
     statements executed *)
  Alcotest.(check bool) "bounded txn connections" true
    (List.length sst.Citus.State.txn_conns <= 2);
  ignore (exec s "COMMIT");
  check_int s "committed" 2 "SELECT v FROM t WHERE k = 1"

let test_multi_shard_select_inside_txn_sees_own_writes () =
  let _, _, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "BEGIN");
  for i = 1 to 10 do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, 1)" i))
  done;
  (* a multi-shard aggregate inside the same transaction must see the
     uncommitted rows (per-connection affinity makes that possible) *)
  check_int s "sees own uncommitted rows" 10 "SELECT count(*) FROM t";
  ignore (exec s "ROLLBACK");
  check_int s "gone after rollback" 0 "SELECT count(*) FROM t"

(* --- sim cost model --- *)

let test_closed_throughput_client_bound () =
  (* light work, few clients: client-population-bound *)
  let r =
    Sim.Cost.closed_throughput ~clients:10 ~think_s:0.0 ~delay_s:0.001
      ~centers:[ { Sim.Cost.demand_s = 0.0001; servers = 16.0 } ]
  in
  Alcotest.(check bool) "not saturated" true (r.Sim.Cost.bottleneck = None);
  Alcotest.(check (float 1.0)) "X = N/R" (10.0 /. 0.0011) r.Sim.Cost.throughput

let test_closed_throughput_resource_bound () =
  let r =
    Sim.Cost.closed_throughput ~clients:1000 ~think_s:0.0 ~delay_s:0.0
      ~centers:
        [
          { Sim.Cost.demand_s = 0.001; servers = 16.0 };
          { Sim.Cost.demand_s = 0.004; servers = 1.0 };
        ]
  in
  (* the disk (center 1) saturates first: X = 1/0.004 = 250 *)
  Alcotest.(check (option int)) "disk bottleneck" (Some 1) r.Sim.Cost.bottleneck;
  Alcotest.(check (float 0.1)) "throughput" 250.0 r.Sim.Cost.throughput

let test_solo_elapsed_overlap () =
  let spec = Sim.Cost.default_spec in
  let d = { Sim.Cost.cpu_s = 0.8; io_s = 0.5 } in
  (* CPU spread over 8 cores = 0.1 < io 0.5: io dominates *)
  Alcotest.(check (float 0.001)) "io bound" 0.5
    (Sim.Cost.solo_elapsed ~spec ~parallelism:8 d);
  (* serial CPU dominates *)
  Alcotest.(check (float 0.001)) "cpu bound" 0.8
    (Sim.Cost.solo_elapsed ~spec ~parallelism:1 d)

let test_demand_of_uses_weights () =
  let spec = Sim.Cost.default_spec in
  let m = { Engine.Meter.zero with Engine.Meter.statements = 10 } in
  let d = Sim.Cost.demand_of ~spec ~meter:m ~misses:75 in
  Alcotest.(check (float 1e-9)) "cpu" (10.0 *. 20.0 *. spec.Sim.Cost.cpu_unit)
    d.Sim.Cost.cpu_s;
  Alcotest.(check (float 1e-9)) "io" (75.0 /. 7500.0) d.Sim.Cost.io_s

(* --- capability model --- *)

let test_capability_matrix_matches_paper () =
  let open Citus.Capability in
  (* spot-check the distinctive cells of Table 2 *)
  Alcotest.(check bool) "HC needs connection scaling" true
    (requires High_performance_crud Connection_scaling = Required);
  Alcotest.(check bool) "MT does not" true
    (requires Multi_tenant Connection_scaling = Not_required);
  Alcotest.(check bool) "DW needs non-colocated joins" true
    (requires Data_warehousing Non_colocated_distributed_joins = Required);
  Alcotest.(check bool) "DW no routing" true
    (requires Data_warehousing Query_routing = Not_required);
  Alcotest.(check bool) "RA columnar is Some" true
    (requires Real_time_analytics Columnar_storage = Some_workloads);
  (* every capability names an implementation site *)
  List.iter
    (fun c -> Alcotest.(check bool) "impl non-empty" true (implemented_by c <> ""))
    capabilities

let () =
  Alcotest.run "citus_features"
    [
      ( "tenant_isolation",
        [
          Alcotest.test_case "isolate" `Quick test_isolate_tenant;
          Alcotest.test_case "isolate + move" `Quick test_isolate_then_move;
          Alcotest.test_case "via udf" `Quick test_isolate_via_udf;
        ] );
      ( "restore_points",
        [
          Alcotest.test_case "all nodes" `Quick test_restore_point_on_all_nodes;
          Alcotest.test_case "partitioned fails" `Quick
            test_restore_point_fails_when_partitioned;
        ] );
      ( "failures",
        [
          Alcotest.test_case "worker down mid-query" `Quick
            test_worker_failure_mid_query;
        ] );
      ( "explain",
        [
          Alcotest.test_case "tiers" `Quick test_explain_tiers;
          Alcotest.test_case "join order" `Quick test_explain_join_order;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "citus_shards/tables" `Quick
            test_citus_shards_introspection;
          Alcotest.test_case "reference subquery" `Quick
            test_subquery_on_reference_table_allowed;
        ] );
      ( "adaptive_executor",
        [
          Alcotest.test_case "single fast task" `Quick
            test_slow_start_single_fast_task;
          Alcotest.test_case "fast tasks stay serial" `Quick
            test_slow_start_many_fast_tasks_stay_serial;
          Alcotest.test_case "long tasks ramp up" `Quick
            test_slow_start_long_tasks_ramp_up;
          Alcotest.test_case "shared limit" `Quick test_shared_limit_caps_connections;
        ] );
      ( "affinity",
        [
          Alcotest.test_case "within txn" `Quick
            test_connection_affinity_within_txn;
          Alcotest.test_case "multi-shard sees own writes" `Quick
            test_multi_shard_select_inside_txn_sees_own_writes;
        ] );
      ( "sim",
        [
          Alcotest.test_case "client bound" `Quick test_closed_throughput_client_bound;
          Alcotest.test_case "resource bound" `Quick
            test_closed_throughput_resource_bound;
          Alcotest.test_case "solo elapsed" `Quick test_solo_elapsed_overlap;
          Alcotest.test_case "demand weights" `Quick test_demand_of_uses_weights;
        ] );
      ( "capabilities",
        [ Alcotest.test_case "table 2 cells" `Quick test_capability_matrix_matches_paper ] );
    ]
