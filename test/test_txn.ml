(* Transaction manager, snapshots, locks, WAL, prepared transactions. *)

open Txn

let test_snapshot_sees () =
  let s = { Snapshot.xmin = 5; xmax = 10; active = [ 7 ] } in
  Alcotest.(check bool) "below xmin" true (Snapshot.sees s 3);
  Alcotest.(check bool) "active" false (Snapshot.sees s 7);
  Alcotest.(check bool) "in window, finished" true (Snapshot.sees s 6);
  Alcotest.(check bool) "at xmax" false (Snapshot.sees s 10);
  Alcotest.(check bool) "beyond xmax" false (Snapshot.sees s 12)

let test_begin_commit () =
  let m = Manager.create () in
  let x = Manager.begin_txn m in
  Alcotest.(check bool) "active" true (Manager.is_active m x);
  Manager.commit m x;
  Alcotest.(check bool) "committed" true (Manager.status m x = Manager.Committed)

let test_abort () =
  let m = Manager.create () in
  let x = Manager.begin_txn m in
  Manager.abort m x;
  Alcotest.(check bool) "aborted" true (Manager.status m x = Manager.Aborted)

let test_snapshot_excludes_concurrent () =
  let m = Manager.create () in
  let x1 = Manager.begin_txn m in
  let x2 = Manager.begin_txn m in
  let snap = Manager.take_snapshot m in
  Alcotest.(check bool) "x1 invisible" false (Snapshot.sees snap x1);
  Manager.commit m x1;
  (* snapshot taken before commit still does not see it *)
  Alcotest.(check bool) "still invisible" false (Snapshot.sees snap x1);
  let snap2 = Manager.take_snapshot m in
  Alcotest.(check bool) "new snapshot sees x1" true (Snapshot.sees snap2 x1);
  Manager.commit m x2

let test_unknown_xid_is_aborted () =
  let m = Manager.create () in
  Alcotest.(check bool) "crashed xid" true (Manager.status m 999 = Manager.Aborted)

let test_double_commit_rejected () =
  let m = Manager.create () in
  let x = Manager.begin_txn m in
  Manager.commit m x;
  match Manager.commit m x with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double commit should fail"

(* --- locks --- *)

let test_row_lock_conflict () =
  let l = Lock.create () in
  let t = Lock.Row ("t", 1) in
  Alcotest.(check bool) "first grant" true
    (Lock.acquire l ~owner:1 t Lock.Row_lock = Lock.Granted);
  (match Lock.acquire l ~owner:2 t Lock.Row_lock with
   | Lock.Blocked [ 1 ] -> ()
   | _ -> Alcotest.fail "expected blocked by 1");
  Lock.release_all l ~owner:1;
  Alcotest.(check bool) "after release" true
    (Lock.acquire l ~owner:2 t Lock.Row_lock = Lock.Granted)

let test_reacquire_is_noop () =
  let l = Lock.create () in
  let t = Lock.Row ("t", 1) in
  ignore (Lock.acquire l ~owner:1 t Lock.Row_lock);
  Alcotest.(check bool) "reacquire" true
    (Lock.acquire l ~owner:1 t Lock.Row_lock = Lock.Granted)

let test_table_lock_modes () =
  let l = Lock.create () in
  let t = Lock.Table "t" in
  ignore (Lock.acquire l ~owner:1 t Lock.Access_share);
  ignore (Lock.acquire l ~owner:2 t Lock.Row_exclusive);
  (* reads and writes coexist; DDL does not *)
  (match Lock.acquire l ~owner:3 t Lock.Access_exclusive with
   | Lock.Blocked holders ->
     Alcotest.(check int) "two holders" 2 (List.length holders)
   | Lock.Granted -> Alcotest.fail "DDL should block")

let test_wait_edges () =
  let l = Lock.create () in
  let t = Lock.Row ("t", 7) in
  ignore (Lock.acquire l ~owner:1 t Lock.Row_lock);
  ignore (Lock.acquire l ~owner:2 t Lock.Row_lock);
  Alcotest.(check (list (pair int int))) "edge 2->1" [ (2, 1) ] (Lock.wait_edges l);
  (* granting clears the wait *)
  Lock.release_all l ~owner:1;
  ignore (Lock.acquire l ~owner:2 t Lock.Row_lock);
  Alcotest.(check (list (pair int int))) "no edges" [] (Lock.wait_edges l)

let test_local_deadlock_detection () =
  let l = Lock.create () in
  let r1 = Lock.Row ("t", 1) and r2 = Lock.Row ("t", 2) in
  ignore (Lock.acquire l ~owner:1 r1 Lock.Row_lock);
  ignore (Lock.acquire l ~owner:2 r2 Lock.Row_lock);
  ignore (Lock.acquire l ~owner:1 r2 Lock.Row_lock);
  (* 1 waits for 2 *)
  Alcotest.(check bool) "no deadlock yet" true (Lock.detect_deadlock l = None);
  ignore (Lock.acquire l ~owner:2 r1 Lock.Row_lock);
  (* 2 waits for 1: cycle *)
  match Lock.detect_deadlock l with
  | Some members ->
    Alcotest.(check (list int)) "cycle members" [ 1; 2 ]
      (List.sort Int.compare members)
  | None -> Alcotest.fail "deadlock not detected"

(* --- WAL --- *)

let test_wal_order_and_restore_point () =
  let w = Wal.create () in
  let l1 = Wal.append w (Wal.Begin 1) in
  let _ = Wal.append w (Wal.Insert { xid = 1; table = "t"; tid = 0; row = [||] }) in
  let l3 = Wal.append w (Wal.Restore_point "rp1") in
  let _ = Wal.append w (Wal.Commit 1) in
  Alcotest.(check bool) "lsn monotonic" true (l3 > l1);
  Alcotest.(check (option int)) "restore point" (Some l3)
    (Wal.find_restore_point w "rp1");
  Alcotest.(check int) "records upto" 2
    (List.length (Wal.records ~upto:l3 w))

(* --- prepared transactions --- *)

let test_prepare_commit_prepared () =
  let m = Manager.create () in
  let x = Manager.begin_txn m in
  ignore (Lock.acquire (Manager.locks m) ~owner:x (Lock.Row ("t", 1)) Lock.Row_lock);
  Manager.prepare m x ~gid:"citus_0_1_2";
  (* still in progress, lock still held *)
  Alcotest.(check bool) "in progress" true (Manager.status m x = Manager.In_progress);
  (match Lock.acquire (Manager.locks m) ~owner:99 (Lock.Row ("t", 1)) Lock.Row_lock with
   | Lock.Blocked _ -> ()
   | Lock.Granted -> Alcotest.fail "prepared txn must keep its locks");
  Alcotest.(check (list (pair string int))) "listed" [ ("citus_0_1_2", x) ]
    (Manager.prepared_transactions m);
  Manager.commit_prepared m ~gid:"citus_0_1_2";
  Alcotest.(check bool) "committed" true (Manager.status m x = Manager.Committed);
  (match Lock.acquire (Manager.locks m) ~owner:99 (Lock.Row ("t", 1)) Lock.Row_lock with
   | Lock.Granted -> ()
   | Lock.Blocked _ -> Alcotest.fail "locks must be released")

let test_rollback_prepared () =
  let m = Manager.create () in
  let x = Manager.begin_txn m in
  Manager.prepare m x ~gid:"g";
  Manager.rollback_prepared m ~gid:"g";
  Alcotest.(check bool) "aborted" true (Manager.status m x = Manager.Aborted)

let test_prepared_missing_gid () =
  let m = Manager.create () in
  match Manager.commit_prepared m ~gid:"nope" with
  | exception Manager.No_such_prepared "nope" -> ()
  | () -> Alcotest.fail "should raise"

let test_duplicate_gid_rejected () =
  let m = Manager.create () in
  let x1 = Manager.begin_txn m in
  let x2 = Manager.begin_txn m in
  Manager.prepare m x1 ~gid:"g";
  match Manager.prepare m x2 ~gid:"g" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate gid should fail"

let test_prepared_blocks_oldest_xid () =
  let m = Manager.create () in
  let x1 = Manager.begin_txn m in
  Manager.prepare m x1 ~gid:"g";
  let x2 = Manager.begin_txn m in
  Manager.commit m x2;
  Alcotest.(check int) "oldest is the prepared txn" x1 (Manager.oldest_active_xid m);
  Manager.commit_prepared m ~gid:"g";
  Alcotest.(check bool) "advances after resolve" true
    (Manager.oldest_active_xid m > x1)

(* --- hybrid logical clocks --- *)

let ts = Alcotest.testable Hlc.pp (fun a b -> Hlc.compare_ts a b = 0)

let test_hlc_monotone_under_stalled_clock () =
  (* physical clock frozen: the logical component alone must keep every
     draw strictly increasing (pure Lamport behavior) *)
  let h = Hlc.create ~physical:(fun () -> 1.0) () in
  let prev = ref (Hlc.now h) in
  for _ = 1 to 100 do
    let t = Hlc.now h in
    Alcotest.(check bool) "strictly increasing" true Hlc.(!prev < t);
    Alcotest.(check (float 0.0)) "pt pinned to physical" 1.0 t.Hlc.pt;
    prev := t
  done;
  Alcotest.(check ts) "peek does not advance" !prev (Hlc.peek h)

let test_hlc_monotone_under_backwards_clock () =
  (* the physical clock runs backwards (negative skew kicking in):
     timestamps still only move forward *)
  let phys = ref 10.0 in
  let h = Hlc.create ~physical:(fun () -> !phys) () in
  let t1 = Hlc.now h in
  phys := 2.0;
  let t2 = Hlc.now h in
  Alcotest.(check bool) "never goes back" true Hlc.(t1 < t2);
  Alcotest.(check (float 0.0)) "holds the high-water mark" 10.0 t2.Hlc.pt

let test_hlc_tracks_physical_time () =
  let phys = ref 0.0 in
  let h = Hlc.create ~physical:(fun () -> !phys) () in
  ignore (Hlc.now h);
  phys := 5.0;
  let t = Hlc.now h in
  Alcotest.(check (float 0.0)) "pt follows the clock" 5.0 t.Hlc.pt;
  Alcotest.(check int) "logical resets on fresh physical time" 0 t.Hlc.lc

let test_hlc_observe_dominates_remote () =
  (* a remote stamp from a node skewed far into the future: the local
     clock absorbs it in the logical component and causality holds *)
  let h = Hlc.create ~physical:(fun () -> 1.0) () in
  let remote = { Hlc.pt = 100.0; lc = 7 } in
  let t = Hlc.observe h remote in
  Alcotest.(check bool) "dominates the remote stamp" true Hlc.(remote < t);
  Alcotest.(check bool) "skew is absorbed logically, not amplified" true
    (Float.compare t.Hlc.pt remote.Hlc.pt <= 0);
  (* every later local draw also dominates the observed stamp *)
  let t' = Hlc.now h in
  Alcotest.(check bool) "send after receive keeps happening-before" true
    Hlc.(t < t')

let test_hlc_skew_bound () =
  (* however skewed its physical thunk, a clock never issues a stamp
     whose pt exceeds the max physical time / remote pt it has seen *)
  let phys = ref 3.0 in
  let h = Hlc.create ~physical:(fun () -> !phys) () in
  let remote = { Hlc.pt = 8.0; lc = 0 } in
  ignore (Hlc.observe h remote);
  phys := 4.0;
  for _ = 1 to 50 do
    let t = Hlc.now h in
    Alcotest.(check bool) "pt bounded by max seen" true
      (Float.compare t.Hlc.pt 8.0 <= 0)
  done

let test_hlc_string_round_trip () =
  List.iter
    (fun t ->
      match Hlc.of_string (Hlc.to_string t) with
      | Some t' -> Alcotest.(check ts) "round trips" t t'
      | None -> Alcotest.fail "of_string rejected its own rendering")
    [
      Hlc.zero;
      { Hlc.pt = 1.5; lc = 0 };
      { Hlc.pt = 123.456789; lc = 42 };
      (* not representable in any fixed decimal rendering: the round
         trip must still be bit-exact, or a committed-at timestamp read
         back from a commit record sorts differently than the one the
         coordinator handed out *)
      { Hlc.pt = 1.0 /. 3.0; lc = 7 };
      { Hlc.pt = 0.006095500000000001; lc = 10 };
    ];
  Alcotest.(check bool) "garbage rejected" true (Hlc.of_string "nope" = None)

(* the same deterministic message exchange replayed twice is
   bit-identical — the cluster leans on this for seeded reproducibility *)
let test_hlc_deterministic_replay () =
  let run () =
    let phys_a = ref 0.0 and phys_b = ref 0.0 in
    let a = Hlc.create ~physical:(fun () -> !phys_a) () in
    let b = Hlc.create ~physical:(fun () -> !phys_b) () in
    let out = ref [] in
    let record t = out := Hlc.to_string t :: !out in
    for i = 1 to 20 do
      phys_a := float_of_int i *. 0.25;
      (* b's clock is skewed 3s ahead and drifts *)
      phys_b := (float_of_int i *. 0.25) +. 3.0 +. (0.01 *. float_of_int i);
      let m = Hlc.now a in
      record m;
      record (Hlc.observe b m);
      let r = Hlc.now b in
      record r;
      record (Hlc.observe a r)
    done;
    List.rev !out
  in
  Alcotest.(check (list string)) "same exchange, same stamps" (run ()) (run ())

let () =
  Alcotest.run "txn"
    [
      ( "snapshots",
        [
          Alcotest.test_case "sees" `Quick test_snapshot_sees;
          Alcotest.test_case "excludes concurrent" `Quick
            test_snapshot_excludes_concurrent;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "begin/commit" `Quick test_begin_commit;
          Alcotest.test_case "abort" `Quick test_abort;
          Alcotest.test_case "unknown xid aborted" `Quick
            test_unknown_xid_is_aborted;
          Alcotest.test_case "double commit rejected" `Quick
            test_double_commit_rejected;
        ] );
      ( "locks",
        [
          Alcotest.test_case "row conflict" `Quick test_row_lock_conflict;
          Alcotest.test_case "reacquire" `Quick test_reacquire_is_noop;
          Alcotest.test_case "table modes" `Quick test_table_lock_modes;
          Alcotest.test_case "wait edges" `Quick test_wait_edges;
          Alcotest.test_case "local deadlock" `Quick test_local_deadlock_detection;
        ] );
      ( "wal",
        [ Alcotest.test_case "order and restore point" `Quick
            test_wal_order_and_restore_point ] );
      ( "hlc",
        [
          Alcotest.test_case "monotone under stalled clock" `Quick
            test_hlc_monotone_under_stalled_clock;
          Alcotest.test_case "monotone under backwards clock" `Quick
            test_hlc_monotone_under_backwards_clock;
          Alcotest.test_case "tracks physical time" `Quick
            test_hlc_tracks_physical_time;
          Alcotest.test_case "observe dominates remote" `Quick
            test_hlc_observe_dominates_remote;
          Alcotest.test_case "skew bound" `Quick test_hlc_skew_bound;
          Alcotest.test_case "string round trip" `Quick
            test_hlc_string_round_trip;
          Alcotest.test_case "deterministic replay" `Quick
            test_hlc_deterministic_replay;
        ] );
      ( "prepared",
        [
          Alcotest.test_case "prepare then commit" `Quick
            test_prepare_commit_prepared;
          Alcotest.test_case "rollback prepared" `Quick test_rollback_prepared;
          Alcotest.test_case "missing gid" `Quick test_prepared_missing_gid;
          Alcotest.test_case "duplicate gid" `Quick test_duplicate_gid_rejected;
          Alcotest.test_case "blocks oldest xid" `Quick
            test_prepared_blocks_oldest_xid;
        ] );
    ]
