(* Sim.Sched — the deterministic cooperative scheduler.

   Covers the contracts the layers above lean on: bit-identical traces
   for the same seed, round-robin fairness across node queues, nested
   spawn/await, failure delivery (awaited and unawaited, including a
   fiber that sleeps across a scheduled node crash), timed condition
   waits, and the measured-makespan property the adaptive executor's
   report is built on. *)

(* --- a small traced workload: six fibers on three node queues --- *)

let run_trace ?seed () =
  let clock = Sim.Clock.create () in
  let events = ref [] in
  let record sched name = events := (name, Sim.Sched.now sched) :: !events in
  Sim.Sched.run ?seed ~clock (fun sched ->
      let fibers =
        List.map
          (fun (node, name, d) ->
            Sim.Sched.spawn sched ~node (fun () ->
                record sched (name ^ ":start");
                Sim.Sched.sleep sched d;
                record sched (name ^ ":mid");
                Sim.Sched.yield sched;
                record sched (name ^ ":end")))
          [
            ("n1", "a", 0.003);
            ("n1", "b", 0.001);
            ("n2", "c", 0.002);
            ("n2", "d", 0.001);
            ("n3", "e", 0.004);
            ("n3", "f", 0.002);
          ]
      in
      ignore (Sim.Sched.join_all sched fibers));
  List.rev !events

let trace_testable =
  Alcotest.(list (pair string (float 0.0)))

let test_same_seed_same_trace () =
  Alcotest.check trace_testable "seeded runs are bit-identical"
    (run_trace ~seed:7 ()) (run_trace ~seed:7 ());
  Alcotest.check trace_testable "unseeded runs are bit-identical"
    (run_trace ()) (run_trace ());
  Alcotest.(check int) "complete trace" 18 (List.length (run_trace ~seed:7 ()))

let test_seed_perturbs_interleaving () =
  (* the seed exists to fuzz interleavings: across a handful of seeds at
     least one must diverge from the strict round-robin order *)
  let rr = run_trace () in
  let diverged =
    List.exists (fun seed -> run_trace ~seed () <> rr) [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "some seed changes the schedule" true diverged

let test_fairness_round_robin () =
  (* two chatty fibers on different nodes: unseeded scheduling gives
     strict alternation — neither queue can starve the other *)
  let clock = Sim.Clock.create () in
  let events = ref [] in
  Sim.Sched.run ~clock (fun sched ->
      let chatty name =
        Sim.Sched.spawn sched ~node:name (fun () ->
            for _ = 1 to 5 do
              events := name :: !events;
              Sim.Sched.yield sched
            done)
      in
      ignore (Sim.Sched.join_all sched [ chatty "a"; chatty "b" ]));
  let order = List.rev !events in
  Alcotest.(check int) "all slices ran" 10 (List.length order);
  let rec alternates = function
    | x :: (y :: _ as rest) ->
      if String.equal x y then false else alternates rest
    | _ -> true
  in
  Alcotest.(check bool) "strict alternation" true (alternates order)

let test_nested_spawn () =
  let clock = Sim.Clock.create () in
  let total =
    Sim.Sched.run ~clock (fun sched ->
        let child base =
          Sim.Sched.spawn sched (fun () ->
              let grandchildren =
                List.init 3 (fun i ->
                    Sim.Sched.spawn sched (fun () ->
                        Sim.Sched.sleep sched 0.001;
                        base + i))
              in
              List.fold_left ( + ) 0 (Sim.Sched.join_all sched grandchildren))
        in
        List.fold_left ( + ) 0
          (Sim.Sched.join_all sched [ child 10; child 20; child 30 ]))
  in
  (* 10+11+12 + 20+21+22 + 30+31+32 *)
  Alcotest.(check int) "grandchildren summed" 189 total

let test_nested_run () =
  (* a fiber may drive a whole inner scheduler (fresh clock): inner
     effects resolve inside, the outer run is undisturbed *)
  let clock = Sim.Clock.create () in
  let v =
    Sim.Sched.run ~clock (fun sched ->
        let fib =
          Sim.Sched.spawn sched (fun () ->
              let inner_clock = Sim.Clock.create () in
              Sim.Sched.run ~clock:inner_clock (fun inner ->
                  let fibs =
                    List.init 4 (fun i ->
                        Sim.Sched.spawn inner (fun () ->
                            Sim.Sched.sleep inner 0.01;
                            i))
                  in
                  List.fold_left ( + ) 0 (Sim.Sched.join_all inner fibs)))
        in
        Sim.Sched.await sched fib)
  in
  Alcotest.(check int) "inner scheduler result" 6 v

let test_parallel_sleep_makespan_is_max () =
  let clock = Sim.Clock.create () in
  Sim.Clock.advance clock 5.0;
  let t0 = Sim.Clock.now clock in
  Sim.Sched.run ~clock (fun sched ->
      ignore
        (Sim.Sched.join_all sched
           (List.map
              (fun d ->
                Sim.Sched.spawn sched (fun () -> Sim.Sched.sleep sched d))
              [ 0.010; 0.030; 0.020 ])));
  Alcotest.(check (float 1e-9)) "elapsed = max, not sum" 0.030
    (Sim.Clock.now clock -. t0)

let test_awaited_failure_is_delivered () =
  let clock = Sim.Clock.create () in
  let r =
    Sim.Sched.run ~clock (fun sched ->
        let fib = Sim.Sched.spawn sched (fun () -> failwith "boom") in
        Sim.Sched.await_result sched fib)
  in
  match r with
  | Error (Failure m) -> Alcotest.(check string) "payload" "boom" m
  | Error e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
  | Ok () -> Alcotest.fail "expected a failure"

let test_unawaited_failure_reraises () =
  let clock = Sim.Clock.create () in
  Alcotest.check_raises "silent failures are not allowed" (Failure "boom")
    (fun () ->
      Sim.Sched.run ~clock (fun sched ->
          ignore (Sim.Sched.spawn sched (fun () -> failwith "boom"))))

let test_await_after_scheduled_crash () =
  (* a fiber sleeps across a fault-plan crash fired by the clock jump
     (on_advance): its next round trip fails and await_result hands the
     failure back instead of wedging the run *)
  let cluster = Cluster.Topology.create ~fault_seed:11 ~workers:2 () in
  let fault = Option.get (Cluster.Topology.fault cluster) in
  Sim.Fault.schedule_crash fault ~at:0.005 "worker1";
  let w1 = Cluster.Topology.find_node cluster "worker1" in
  let conn = Cluster.Connection.open_ cluster w1 in
  let r =
    Sim.Sched.run ~clock:cluster.Cluster.Topology.clock
      ~on_advance:(fun () -> Cluster.Topology.fault_tick cluster)
      (fun sched ->
        let fib =
          Sim.Sched.spawn sched ~node:"worker1" (fun () ->
              Sim.Sched.sleep sched 0.010;
              Cluster.Connection.(await (exec_async conn "SELECT 1")))
        in
        Sim.Sched.await_result sched fib)
  in
  (match r with
   | Error (Cluster.Connection.Node_unavailable { node; _ }) ->
     Alcotest.(check string) "failed against the crashed node" "worker1" node
   | Error e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e)
   | Ok _ -> Alcotest.fail "round trip should have failed");
  Alcotest.(check bool) "the crash fired during the sleep" false
    (Sim.Fault.node_up fault "worker1")

let test_timed_wait_deadline_and_broadcast () =
  let clock = Sim.Clock.create () in
  Sim.Sched.run ~clock (fun sched ->
      let cond = Sim.Sched.make_cond () in
      (* nobody broadcasts: the deadline wakes us *)
      let waiter =
        Sim.Sched.spawn sched (fun () ->
            Sim.Sched.timed_wait sched cond ~until:0.020;
            Sim.Sched.now sched)
      in
      Alcotest.(check (float 1e-9)) "woken by the deadline" 0.020
        (Sim.Sched.await sched waiter);
      (* a broadcast before the deadline wins the race *)
      let early =
        Sim.Sched.spawn sched (fun () ->
            Sim.Sched.timed_wait sched cond ~until:1.0;
            Sim.Sched.now sched)
      in
      let poker =
        Sim.Sched.spawn sched (fun () ->
            Sim.Sched.sleep sched 0.005;
            Sim.Sched.broadcast sched cond)
      in
      let woken_at = Sim.Sched.await sched early in
      Sim.Sched.await sched poker;
      Alcotest.(check (float 1e-9)) "woken by the broadcast" 0.025 woken_at)

(* --- cancellation and deadlines: the gray-failure machinery the
   executor's statement timeouts and hedged reads are built on --- *)

let test_cancel_delivers_and_cleans_up () =
  let clock = Sim.Clock.create () in
  let cleaned = ref false in
  let r =
    Sim.Sched.run ~clock (fun sched ->
        let victim =
          Sim.Sched.spawn sched (fun () ->
              Fun.protect
                ~finally:(fun () -> cleaned := true)
                (fun () -> Sim.Sched.sleep sched 10.0))
        in
        let killer =
          Sim.Sched.spawn sched (fun () ->
              Sim.Sched.sleep sched 0.001;
              Sim.Sched.cancel sched victim)
        in
        let r = Sim.Sched.await_result sched victim in
        Sim.Sched.await sched killer;
        r)
  in
  (match r with
   | Error Sim.Sched.Cancelled -> ()
   | Error e -> Alcotest.failf "unexpected %s" (Printexc.to_string e)
   | Ok () -> Alcotest.fail "expected cancellation");
  Alcotest.(check bool) "Fun.protect cleanup ran" true !cleaned;
  (* delivery interrupted the 10s sleep instead of waiting it out *)
  Alcotest.(check bool) "cancel woke the sleeper early" true
    (Sim.Clock.now clock < 1.0)

let test_cancel_propagates_to_children () =
  let clock = Sim.Clock.create () in
  let child_cancelled = ref false in
  Sim.Sched.run ~clock (fun sched ->
      let parent =
        Sim.Sched.spawn sched (fun () ->
            let child =
              Sim.Sched.spawn sched (fun () ->
                  try Sim.Sched.sleep sched 10.0
                  with Sim.Sched.Cancelled as e ->
                    child_cancelled := true;
                    raise e)
            in
            Sim.Sched.await sched child)
      in
      Sim.Sched.sleep sched 0.001;
      Sim.Sched.cancel sched parent;
      ignore (Sim.Sched.await_result sched parent));
  Alcotest.(check bool) "child saw Cancelled" true !child_cancelled

let test_cancelled_cleanup_can_suspend () =
  (* delivery is one-shot: once a fiber has seen Cancelled, its cleanup
     may still sleep and await on the way out *)
  let clock = Sim.Clock.create () in
  let done_at = ref 0.0 in
  Sim.Sched.run ~clock (fun sched ->
      let victim =
        Sim.Sched.spawn sched (fun () ->
            Fun.protect
              ~finally:(fun () ->
                Sim.Sched.sleep sched 0.005;
                done_at := Sim.Sched.now sched)
              (fun () -> Sim.Sched.sleep sched 10.0))
      in
      Sim.Sched.sleep sched 0.001;
      Sim.Sched.cancel sched victim;
      ignore (Sim.Sched.await_result sched victim));
  Alcotest.(check (float 1e-9)) "cleanup slept to completion" 0.006 !done_at

let test_cancel_before_first_slice_never_runs () =
  (* a hedged loser cancelled before its first slice must have zero side
     effects *)
  let clock = Sim.Clock.create () in
  let ran = ref false in
  Sim.Sched.run ~clock (fun sched ->
      let fib = Sim.Sched.spawn sched (fun () -> ran := true) in
      Sim.Sched.cancel sched fib;
      match Sim.Sched.await_result sched fib with
      | Error Sim.Sched.Cancelled -> ()
      | _ -> Alcotest.fail "expected Cancelled");
  Alcotest.(check bool) "the fiber body never started" false !ran

let test_cancelled_unawaited_does_not_reraise () =
  (* cancellation is a demanded outcome, not a lost error: an unawaited
     cancelled fiber must not re-raise at the end of the run *)
  let clock = Sim.Clock.create () in
  let v =
    Sim.Sched.run ~clock (fun sched ->
        let fib =
          Sim.Sched.spawn sched (fun () -> Sim.Sched.sleep sched 10.0)
        in
        Sim.Sched.sleep sched 0.001;
        Sim.Sched.cancel sched fib;
        "clean exit")
  in
  Alcotest.(check string) "run returned normally" "clean exit" v

let test_await_deadline () =
  let clock = Sim.Clock.create () in
  Sim.Sched.run ~clock (fun sched ->
      let slow =
        Sim.Sched.spawn sched (fun () ->
            Sim.Sched.sleep sched 0.050;
            42)
      in
      (match Sim.Sched.await_result sched ~deadline:0.010 slow with
       | Error Sim.Sched.Timed_out -> ()
       | _ -> Alcotest.fail "expected Timed_out");
      Alcotest.(check (float 1e-9)) "timed out exactly at the deadline" 0.010
        (Sim.Sched.now sched);
      (* the awaited fiber itself is undisturbed: a second await (no
         deadline) still hands back its value *)
      Alcotest.(check int) "second await gets the value" 42
        (Sim.Sched.await sched slow))

let test_await_any_first_wins () =
  let clock = Sim.Clock.create () in
  Sim.Sched.run ~clock (fun sched ->
      let mk d v =
        Sim.Sched.spawn sched (fun () ->
            Sim.Sched.sleep sched d;
            v)
      in
      let a = mk 0.030 "slow" in
      let b = mk 0.010 "fast" in
      let idx, r = Sim.Sched.await_any sched [ a; b ] in
      Alcotest.(check int) "the fast fiber won" 1 idx;
      (match r with
       | Ok v -> Alcotest.(check string) "winner value" "fast" v
       | Error e -> Alcotest.failf "unexpected %s" (Printexc.to_string e));
      (* hedged-read idiom: cancel the loser, drain it, move on *)
      Sim.Sched.cancel sched a;
      match Sim.Sched.await_result sched a with
      | Error Sim.Sched.Cancelled -> ()
      | Ok _ -> Alcotest.fail "loser should have been cancelled mid-sleep"
      | Error e -> Alcotest.failf "unexpected %s" (Printexc.to_string e))

(* --- the property the executor report is built on: a 4-node
   scatter-gather's measured makespan is the slowest node's serial time
   (plus at most one slow-start interval), not the cluster-wide sum --- *)

let test_scatter_gather_makespan () =
  let cluster = Cluster.Topology.create ~workers:4 () in
  let citus = Citus.Api.install ~shard_count:16 cluster in
  let s = Citus.Api.connect citus in
  let exec sql = ignore (Engine.Instance.exec s sql) in
  exec "CREATE TABLE t (k bigint, v bigint)";
  exec "SELECT create_distributed_table('t', 'k')";
  exec "BEGIN";
  for i = 1 to 4000 do
    exec (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, %d)" i i)
  done;
  exec "COMMIT";
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let tasks =
    List.map
      (fun (shard : Citus.Metadata.shard) ->
        {
          Citus.Plan.task_node =
            Citus.Metadata.placement meta shard.Citus.Metadata.shard_id;
          task_stmt =
            (Sqlfront.Parser.parse_statement
               (Printf.sprintf "SELECT count(*) FROM %s"
                  (Citus.Metadata.shard_name shard)) [@lint.sql_static]);
          task_group = shard.Citus.Metadata.index_in_colocation;
          task_shard = shard.Citus.Metadata.shard_id;
        })
      (Citus.Metadata.shards_of meta "t")
  in
  let _, r = Citus.Adaptive_executor.execute st (Citus.Api.connect citus) tasks in
  let max_node =
    List.fold_left
      (fun acc (_, d) -> Float.max acc d)
      0.0 r.Citus.Adaptive_executor.node_serial
  in
  Alcotest.(check int) "all four workers opened connections" 4
    (List.length r.Citus.Adaptive_executor.conn_opened_at);
  Alcotest.(check bool) "nodes ran concurrently" true
    (r.Citus.Adaptive_executor.makespan
     < 0.5 *. r.Citus.Adaptive_executor.serial_time);
  Alcotest.(check bool)
    "makespan is the slowest node plus at most one slow-start interval" true
    (r.Citus.Adaptive_executor.makespan
     <= max_node +. st.Citus.State.config.Citus.State.slow_start_interval
        +. 1e-9);
  Alcotest.(check bool) "makespan covers the slowest node" true
    (r.Citus.Adaptive_executor.makespan >= max_node -. 1e-9)

let () =
  Alcotest.run "sched"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace" `Quick
            test_same_seed_same_trace;
          Alcotest.test_case "seed perturbs interleaving" `Quick
            test_seed_perturbs_interleaving;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "round-robin fairness" `Quick
            test_fairness_round_robin;
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "nested run" `Quick test_nested_run;
          Alcotest.test_case "parallel sleeps: makespan = max" `Quick
            test_parallel_sleep_makespan_is_max;
        ] );
      ( "failures",
        [
          Alcotest.test_case "awaited failure delivered" `Quick
            test_awaited_failure_is_delivered;
          Alcotest.test_case "unawaited failure re-raises" `Quick
            test_unawaited_failure_reraises;
          Alcotest.test_case "await after scheduled crash" `Quick
            test_await_after_scheduled_crash;
        ] );
      ( "conds",
        [
          Alcotest.test_case "timed wait: deadline and broadcast" `Quick
            test_timed_wait_deadline_and_broadcast;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "cancel delivers and cleans up" `Quick
            test_cancel_delivers_and_cleans_up;
          Alcotest.test_case "cancel propagates to children" `Quick
            test_cancel_propagates_to_children;
          Alcotest.test_case "cancelled cleanup can suspend" `Quick
            test_cancelled_cleanup_can_suspend;
          Alcotest.test_case "cancel before first slice" `Quick
            test_cancel_before_first_slice_never_runs;
          Alcotest.test_case "unawaited cancelled fiber is silent" `Quick
            test_cancelled_unawaited_does_not_reraise;
          Alcotest.test_case "await deadline" `Quick test_await_deadline;
          Alcotest.test_case "await_any: first response wins" `Quick
            test_await_any_first_wins;
        ] );
      ( "executor",
        [
          Alcotest.test_case "scatter-gather makespan" `Quick
            test_scatter_gather_makespan;
        ] );
    ]
