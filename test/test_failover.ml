(* Placement health, replica failover, and self-healing shard repair:
   circuit breaker lifecycle, replication-factor placements, reads/writes
   surviving a lost replica, the repair daemon restoring Inactive
   placements, and 2PC commit-drain accounting. *)

let make ?(workers = 3) ?(shard_count = 4) () =
  let cluster = Cluster.Topology.create ~workers () in
  let citus = Citus.Api.install ~shard_count cluster in
  let s = Citus.Api.connect citus in
  (cluster, citus, s)

let exec s sql = Engine.Instance.exec s sql

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | rows ->
    Alcotest.fail
      (Printf.sprintf "expected one int from %S, got %d rows" sql
         (List.length rows))

let check_int s msg expected sql =
  Alcotest.(check int) msg expected (one_int s sql)

let setup_items s =
  ignore
    (exec s "CREATE TABLE items (key bigint PRIMARY KEY, val text, qty bigint)");
  ignore (exec s "SELECT create_distributed_table('items', 'key')")

let load_items ?(n = 30) s =
  for i = 1 to n do
    ignore
      (exec s
         (Printf.sprintf
            "INSERT INTO items (key, val, qty) VALUES (%d, 'v%d', %d)" i i
            (i mod 5)))
  done

let node_of citus table k =
  let meta = citus.Citus.Api.metadata in
  Citus.Metadata.placement meta
    (Citus.Metadata.shard_for_value meta ~table (Datum.Int k))
      .Citus.Metadata.shard_id

let two_keys_on_different_nodes citus table =
  let k1 = 1 in
  let rec find k =
    if String.equal (node_of citus table k) (node_of citus table k1) then
      find (k + 1)
    else k
  in
  (k1, find 2)

(* --- circuit breaker unit tests --- *)

let test_breaker_lifecycle () =
  let clock = Sim.Clock.create () in
  let h = Citus.Health.create ~clock () in
  Alcotest.(check bool) "fresh node available" true
    (Citus.Health.available h "w1");
  Citus.Health.record_failure h "w1";
  Citus.Health.record_failure h "w1";
  Alcotest.(check bool) "below threshold still available" true
    (Citus.Health.available h "w1");
  Citus.Health.record_failure h "w1";
  Alcotest.(check bool) "threshold trips the breaker" false
    (Citus.Health.available h "w1");
  (* the backoff elapses on the simulated clock: half-open lets a probe in *)
  Sim.Clock.advance clock 1.5;
  Alcotest.(check bool) "half-open accepts a probe" true
    (Citus.Health.available h "w1");
  (* a failed probe re-opens with a doubled backoff *)
  Citus.Health.record_failure h "w1";
  Alcotest.(check bool) "probe failure re-opens" false
    (Citus.Health.available h "w1");
  Sim.Clock.advance clock 1.5;
  Alcotest.(check bool) "doubled backoff still running" false
    (Citus.Health.available h "w1");
  Sim.Clock.advance clock 1.0;
  Alcotest.(check bool) "half-open again" true (Citus.Health.available h "w1");
  Citus.Health.record_success h "w1";
  Alcotest.(check bool) "success closes the breaker" true
    (Citus.Health.available h "w1");
  let stats = Citus.Health.stats h "w1" in
  Alcotest.(check int) "consecutive failures reset" 0
    stats.Citus.Health.consecutive_failures;
  Alcotest.(check int) "total failures kept" 4 stats.Citus.Health.failures

let test_breaker_feeds_from_exec () =
  let _, citus, s = make () in
  setup_items s;
  load_items ~n:10 s;
  let st = Citus.Api.coordinator_state citus in
  let victim = node_of citus "items" 1 in
  Citus.State.partition_node st victim;
  for _ = 1 to 4 do
    match exec s "SELECT count(*) FROM items" with _ -> () | exception _ -> ()
  done;
  Alcotest.(check bool) "failures recorded for the partitioned node" true
    ((Citus.Health.stats st.Citus.State.health victim).Citus.Health.failures
     > 0);
  Citus.State.heal_node st victim

(* --- replication-factor metadata --- *)

let test_replication_factor_placements () =
  let cluster, citus, s = make () in
  Citus.Api.set_replication_factor citus 2;
  setup_items s;
  let meta = citus.Citus.Api.metadata in
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      let pls = Citus.Metadata.all_placements meta sh.Citus.Metadata.shard_id in
      Alcotest.(check int) "two placements per shard" 2 (List.length pls);
      let nodes =
        List.map (fun (p : Citus.Metadata.placement) -> p.Citus.Metadata.pl_node)
          pls
      in
      Alcotest.(check int) "replicas on distinct nodes" 2
        (List.length (List.sort_uniq String.compare nodes));
      (* a physical shard table exists on every replica *)
      List.iter
        (fun node ->
          let inst =
            (Cluster.Topology.find_node cluster node).Cluster.Topology.instance
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s exists on %s" (Citus.Metadata.shard_name sh)
               node)
            true
            (Engine.Catalog.find_table_opt
               (Engine.Instance.catalog inst)
               (Citus.Metadata.shard_name sh)
             <> None))
        nodes)
    (Citus.Metadata.shards_of meta "items")

let test_set_replication_factor_udf () =
  let _, citus, s = make () in
  ignore (exec s "SELECT citus_set_replication_factor(2)");
  Alcotest.(check int) "factor stored" 2 citus.Citus.Api.replication_factor

(* --- failover + self-healing, end to end --- *)

let test_failover_and_self_healing () =
  let _, citus, s = make () in
  Citus.Api.set_replication_factor citus 2;
  setup_items s;
  load_items s;
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let key = 7 in
  let shard = Citus.Metadata.shard_for_value meta ~table:"items" (Datum.Int key) in
  let replicas = Citus.Metadata.placements meta shard.Citus.Metadata.shard_id in
  let primary = List.nth replicas 0 and secondary = List.nth replicas 1 in
  Citus.State.partition_node st secondary;
  (* reads fail over: the whole table still answers *)
  check_int s "count served during partition" 30 "SELECT count(*) FROM items";
  check_int s "row read served during partition" key
    (Printf.sprintf "SELECT key FROM items WHERE key = %d" key);
  (* the write lands on the surviving replica and marks the lost one *)
  ignore
    (exec s (Printf.sprintf "UPDATE items SET qty = 999 WHERE key = %d" key));
  check_int s "write visible during partition" 999
    (Printf.sprintf "SELECT qty FROM items WHERE key = %d" key);
  Alcotest.(check bool) "lost placement marked inactive" true
    (List.exists
       (fun ((sh : Citus.Metadata.shard), node) ->
         sh.Citus.Metadata.shard_id = shard.Citus.Metadata.shard_id
         && String.equal node secondary)
       (Citus.Metadata.inactive_placements meta));
  (* heal, then let the maintenance daemon repair the stale replica *)
  Citus.State.heal_node st secondary;
  Citus.Api.maintenance citus;
  Alcotest.(check int) "health report shows zero inactive placements" 0
    (List.length (Citus.Metadata.inactive_placements meta));
  (* prove the repaired replica really holds the data: lose the replica
     that served the write and read through the repaired one *)
  Citus.State.partition_node st primary;
  check_int s "repaired replica serves the write" 999
    (Printf.sprintf "SELECT qty FROM items WHERE key = %d" key);
  Citus.State.heal_node st primary

let test_insert_during_partition_marks_and_heals () =
  let _, citus, s = make () in
  Citus.Api.set_replication_factor citus 2;
  setup_items s;
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let key = 101 in
  let shard = Citus.Metadata.shard_for_value meta ~table:"items" (Datum.Int key) in
  let replicas = Citus.Metadata.placements meta shard.Citus.Metadata.shard_id in
  let secondary = List.nth replicas 1 in
  Citus.State.partition_node st secondary;
  ignore
    (exec s
       (Printf.sprintf
          "INSERT INTO items (key, val, qty) VALUES (%d, 'new', 1)" key));
  check_int s "insert visible" 1
    (Printf.sprintf "SELECT count(*) FROM items WHERE key = %d" key);
  Alcotest.(check bool) "some placement inactive" true
    (Citus.Metadata.inactive_placements meta <> []);
  Citus.State.heal_node st secondary;
  Citus.Api.maintenance citus;
  Alcotest.(check int) "repair drained the inactive list" 0
    (List.length (Citus.Metadata.inactive_placements meta));
  (* both replicas active again: the shard accepts replicated writes *)
  ignore
    (exec s (Printf.sprintf "UPDATE items SET qty = 2 WHERE key = %d" key));
  Alcotest.(check int) "still two active placements" 2
    (List.length (Citus.Metadata.placements meta shard.Citus.Metadata.shard_id))

let test_single_replica_failure_still_clean_error () =
  (* replication factor 1 (the default): losing the only placement must
     surface a clean session error, never mark the last placement away *)
  let _, citus, s = make () in
  setup_items s;
  load_items ~n:10 s;
  let st = Citus.Api.coordinator_state citus in
  let victim = node_of citus "items" 1 in
  Citus.State.partition_node st victim;
  (match exec s "SELECT qty FROM items WHERE key = 1" with
   | exception Engine.Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "expected a session error");
  Alcotest.(check int) "no placement marked inactive" 0
    (List.length (Citus.Metadata.inactive_placements citus.Citus.Api.metadata));
  Citus.State.heal_node st victim;
  ignore (exec s "ROLLBACK");
  check_int s "works again after heal" 10 "SELECT count(*) FROM items"

(* --- 2PC drain accounting --- *)

let test_2pc_drain_counts_failed_commits () =
  let _, citus, s = make () in
  setup_items s;
  ignore (exec s "BEGIN");
  load_items ~n:20 s;
  ignore (exec s "COMMIT");
  let st = Citus.Api.coordinator_state citus in
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  let lost = node_of citus "items" k2 in
  Citus.State.inject_failure st ~node:lost ~matching:"COMMIT PREPARED";
  ignore (exec s "BEGIN");
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 555 WHERE key = %d" k1));
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 555 WHERE key = %d" k2));
  ignore (exec s "COMMIT");
  (* the lost COMMIT PREPARED is counted per node, and the commit record
     survives for recovery *)
  Alcotest.(check int) "failed commit counted" 1
    (Citus.Health.failed_commits st.Citus.State.health lost);
  Alcotest.(check bool) "commit record retained" true
    (Citus.Twopc.commit_record_count st > 0);
  (* partition heals; the recovery daemon drains the orphan *)
  Citus.State.clear_failures st;
  Citus.Api.maintenance citus;
  check_int s "k2 committed after recovery" 555
    (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2);
  Alcotest.(check int) "commit records drained" 0
    (Citus.Twopc.commit_record_count st)

let test_coordinator_crash_before_commit_fanout () =
  (* The classic 2PC window: the coordinator has committed locally (commit
     records durable in pg_dist_transaction) but dies before any COMMIT
     PREPARED reaches the workers. After restart, recovery must push the
     decision out from the surviving records. *)
  let cluster, citus, s = make () in
  setup_items s;
  ignore (exec s "BEGIN");
  load_items ~n:20 s;
  ignore (exec s "COMMIT");
  let st = Citus.Api.coordinator_state citus in
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  let n1 = node_of citus "items" k1 and n2 = node_of citus "items" k2 in
  Citus.State.inject_failure st ~node:n1 ~matching:"COMMIT PREPARED";
  Citus.State.inject_failure st ~node:n2 ~matching:"COMMIT PREPARED";
  ignore (exec s "BEGIN");
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 777 WHERE key = %d" k1));
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 777 WHERE key = %d" k2));
  ignore (exec s "COMMIT");
  (* the decision is durable but neither worker has heard it *)
  Alcotest.(check bool) "commit records survive the lost fan-out" true
    (Citus.Twopc.commit_record_count st > 0);
  List.iter
    (fun node ->
      let inst =
        (Cluster.Topology.find_node cluster node).Cluster.Topology.instance
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s still holds its prepared txn" node)
        true
        (Txn.Manager.prepared_transactions (Engine.Instance.txn_manager inst)
         <> []))
    [ n1; n2 ];
  (* coordinator crashes and comes back: WAL replay restores the records *)
  Citus.State.clear_failures st;
  Engine.Instance.restart
    (Cluster.Topology.find_node cluster "coordinator").Cluster.Topology.instance;
  Citus.State.reset_sessions st;
  let s = Citus.Api.connect citus in
  Citus.Api.maintenance citus;
  check_int s "k1 converged to the committed value" 777
    (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k1);
  check_int s "k2 converged to the committed value" 777
    (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2);
  Alcotest.(check int) "commit records drained after recovery" 0
    (Citus.Twopc.commit_record_count st);
  List.iter
    (fun node ->
      let inst =
        (Cluster.Topology.find_node cluster node).Cluster.Topology.instance
      in
      Alcotest.(check
                  (list (pair string string)))
        (Printf.sprintf "no prepared txn left on %s" node)
        []
        (List.map
           (fun (gid, xid) -> (gid, string_of_int xid))
           (Txn.Manager.prepared_transactions
              (Engine.Instance.txn_manager inst))))
    [ n1; n2 ]

(* --- gray failure: statement timeouts, slow-trips, hedged reads --- *)

(* [make] builds clusters without a fault plan (zero injected latency);
   gray-failure tests need [~fault_seed] so stalls and latency draws are
   live. *)
let make_gray ?(workers = 3) ?(shard_count = 4) ?(fault_seed = 42) () =
  let cluster = Cluster.Topology.create ~fault_seed ~workers () in
  let citus = Citus.Api.install ~shard_count cluster in
  let s = Citus.Api.connect citus in
  (cluster, citus, s)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let test_statement_timeout_bounds_a_stalled_read () =
  let cluster, citus, s = make_gray () in
  setup_items s;
  load_items ~n:10 s;
  let st = Citus.Api.coordinator_state citus in
  let fault = Option.get (Cluster.Topology.fault cluster) in
  (* the knob is reachable through SQL, like the GUC it models *)
  ignore (exec s "SELECT citus_set_config('statement_timeout', '0.5')");
  Alcotest.(check (float 1e-9)) "udf set the knob" 0.5
    st.Citus.State.config.Citus.State.statement_timeout;
  (* replication factor 1: the only replica of key 1 browns out — the
     node stays up, its replies just land seconds late *)
  let victim = node_of citus "items" 1 in
  Sim.Fault.stall_node fault ~node:victim ~extra:5.0 ~duration:60.0;
  let clock = cluster.Cluster.Topology.clock in
  let t0 = Sim.Clock.now clock in
  (match exec s "SELECT count(*) FROM items WHERE key = 1" with
   | exception Engine.Instance.Session_error m ->
     Alcotest.(check bool)
       (Printf.sprintf "typed timeout message (got %S)" m)
       true
       (contains ~sub:"statement timeout" m)
   | _ -> Alcotest.fail "expected the stalled read to time out");
  let elapsed = Sim.Clock.now clock -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "failed within deadline + epsilon (%.3fs)" elapsed)
    true
    (elapsed <= 0.5 +. 0.2);
  (* a timeout is a statement abort, not a node failure: nothing leaks,
     every span closes, the breaker saw a slow event but no failure *)
  Alcotest.(check int) "no txn conns pinned" 0 (Citus.State.leaked_txn_conns st);
  Alcotest.(check int) "no prepared pairs pinned" 0
    (Citus.State.leaked_prepared st);
  let trace = Cluster.Topology.trace cluster in
  Alcotest.(check int) "all spans closed" (Obs.Trace.started trace)
    (Obs.Trace.finished trace);
  Alcotest.(check bool) "slow event recorded for the stalled node" true
    (Citus.Health.slow_events st.Citus.State.health victim >= 1);
  Alcotest.(check int) "no hard failure recorded" 0
    (Citus.Health.stats st.Citus.State.health victim).Citus.Health.failures;
  Alcotest.(check int) "no placement marked inactive" 0
    (List.length (Citus.Metadata.inactive_placements citus.Citus.Api.metadata));
  (* the session recovers and, once the stall lifts, so does the node *)
  ignore (exec s "ROLLBACK");
  Sim.Clock.advance clock 61.0;
  check_int s "works again after the stall lifts" 1
    "SELECT count(*) FROM items WHERE key = 1"

let test_slow_trips_breaker_without_failures () =
  let clock = Sim.Clock.create () in
  let h = Citus.Health.create ~clock () in
  Citus.Health.record_slow h "w1";
  Citus.Health.record_slow h "w1";
  Alcotest.(check bool) "below the slow threshold" true
    (Citus.Health.available h "w1");
  Citus.Health.record_slow h "w1";
  Alcotest.(check bool) "third consecutive slow sheds load" false
    (Citus.Health.available h "w1");
  let stats = Citus.Health.stats h "w1" in
  Alcotest.(check int) "slowness is not failure" 0 stats.Citus.Health.failures;
  Alcotest.(check int) "slow events counted" 3
    (Citus.Health.slow_events h "w1");
  (* the backoff elapses; one success snaps the breaker closed *)
  Sim.Clock.advance clock 1.5;
  Alcotest.(check bool) "half-open accepts a probe" true
    (Citus.Health.available h "w1");
  Citus.Health.record_success h "w1";
  Alcotest.(check bool) "success closes the breaker" true
    (Citus.Health.available h "w1")

let test_hedged_read_escapes_a_stall () =
  let cluster, citus, s = make_gray () in
  ignore (exec s "SELECT citus_set_replication_factor(2)");
  setup_items s;
  load_items ~n:10 s;
  let st = Citus.Api.coordinator_state citus in
  let fault = Option.get (Cluster.Topology.fault cluster) in
  ignore (exec s "SELECT citus_set_config('hedge_threshold', '0.05')");
  (* the planned replica of key 1 browns out; the hedge must serve the
     read from the other replica within ~the hedge threshold *)
  let primary = node_of citus "items" 1 in
  Sim.Fault.stall_node fault ~node:primary ~extra:5.0 ~duration:120.0;
  let clock = cluster.Cluster.Topology.clock in
  let m = Cluster.Topology.metrics cluster in
  let t0 = Sim.Clock.now clock in
  check_int s "read served despite the stalled primary" 1
    "SELECT count(*) FROM items WHERE key = 1";
  let elapsed = Sim.Clock.now clock -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "hedge escaped the stall (%.3fs)" elapsed)
    true (elapsed < 1.0);
  Alcotest.(check bool) "a hedge fired" true
    (Obs.Metrics.counter_value m "exec.hedged_reads" >= 1);
  Alcotest.(check bool) "the hedge won" true
    (Obs.Metrics.counter_value m "exec.hedge_wins" >= 1);
  (* the losing attempt was cancelled and drained: its connection is back
     in the pool, no fiber leaked, every span closed *)
  Alcotest.(check int) "no txn conns pinned" 0 (Citus.State.leaked_txn_conns st);
  let trace = Cluster.Topology.trace cluster in
  Alcotest.(check int) "all spans closed" (Obs.Trace.started trace)
    (Obs.Trace.finished trace);
  (* reads hedge; the slow primary got a slow event, not a failure *)
  Alcotest.(check int) "no hard failure recorded" 0
    (Citus.Health.stats st.Citus.State.health primary).Citus.Health.failures

let test_lock_waiters_released_on_retry_give_up () =
  let cluster, citus, s = make () in
  setup_items s;
  load_items ~n:5 s;
  let s2 = Citus.Api.connect citus in
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE items SET qty = 1 WHERE key = 1");
  (match
     Citus.Api.exec_with_retries_report citus s2 ~attempts:2
       "UPDATE items SET qty = 2 WHERE key = 1"
   with
   | exception Engine.Executor.Would_block _ -> ()
   | _ -> Alcotest.fail "expected the bounded retry loop to re-raise");
  (* the abandoned waiter must leave no wait-for edges behind on any
     node, or the deadlock detector would chase (and eventually shoot)
     a transaction that is no longer waiting for anything *)
  List.iter
    (fun (node : Cluster.Topology.node) ->
      let mgr = Engine.Instance.txn_manager node.Cluster.Topology.instance in
      Alcotest.(check int)
        (Printf.sprintf "no wait edges on %s" node.Cluster.Topology.node_name)
        0
        (List.length (Txn.Lock.wait_edges (Txn.Manager.locks mgr))))
    (Cluster.Topology.all_nodes cluster);
  let m = Cluster.Topology.metrics cluster in
  let cancelled_before = Obs.Metrics.counter_value m "deadlock.cancelled" in
  Citus.Api.maintenance citus;
  Alcotest.(check int) "detector cancels nothing stale" cancelled_before
    (Obs.Metrics.counter_value m "deadlock.cancelled");
  ignore (exec s "COMMIT");
  ignore (exec s2 "ROLLBACK")

(* --- bounded lock-conflict retries --- *)

let test_exec_with_retries_reports_attempts () =
  let _, citus, s = make () in
  setup_items s;
  load_items ~n:5 s;
  let _, attempts =
    Citus.Api.exec_with_retries_report citus s "SELECT count(*) FROM items"
  in
  Alcotest.(check int) "clean statement takes one attempt" 1 attempts;
  (* a held lock forces retries; the loop is bounded and re-raises *)
  let s2 = Citus.Api.connect citus in
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE items SET qty = 1 WHERE key = 1");
  (match
     Citus.Api.exec_with_retries_report citus s2 ~attempts:2
       "UPDATE items SET qty = 2 WHERE key = 1"
   with
   | exception Engine.Executor.Would_block _ -> ()
   | _ -> Alcotest.fail "expected the bounded retry loop to re-raise");
  ignore (exec s "COMMIT");
  ignore (exec s2 "ROLLBACK")

let () =
  Alcotest.run "failover"
    [
      ( "breaker",
        [
          Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "fed by Exec" `Quick test_breaker_feeds_from_exec;
        ] );
      ( "replication",
        [
          Alcotest.test_case "placements" `Quick
            test_replication_factor_placements;
          Alcotest.test_case "set factor udf" `Quick
            test_set_replication_factor_udf;
        ] );
      ( "failover",
        [
          Alcotest.test_case "read/write failover + repair" `Quick
            test_failover_and_self_healing;
          Alcotest.test_case "insert during partition" `Quick
            test_insert_during_partition_marks_and_heals;
          Alcotest.test_case "single replica still clean error" `Quick
            test_single_replica_failure_still_clean_error;
        ] );
      ( "twopc",
        [
          Alcotest.test_case "drain counts failed commits" `Quick
            test_2pc_drain_counts_failed_commits;
          Alcotest.test_case "coordinator crash before fan-out" `Quick
            test_coordinator_crash_before_commit_fanout;
        ] );
      ( "retries",
        [
          Alcotest.test_case "attempts surfaced and bounded" `Quick
            test_exec_with_retries_reports_attempts;
        ] );
      ( "gray",
        [
          Alcotest.test_case "statement timeout bounds a stalled read" `Quick
            test_statement_timeout_bounds_a_stalled_read;
          Alcotest.test_case "slow trips breaker without failures" `Quick
            test_slow_trips_breaker_without_failures;
          Alcotest.test_case "hedged read escapes a stall" `Quick
            test_hedged_read_escapes_a_stall;
          Alcotest.test_case "lock waiters released on give-up" `Quick
            test_lock_waiters_released_on_retry_give_up;
        ] );
    ]
