(* Prepared statements and the distributed plan cache (DESIGN.md §4i).

   The targeted groups pin the mechanism down deterministically: the
   PREPARE / EXECUTE / DEALLOCATE lifecycle (SQL and the typed
   [Citus.Session] surface), the typed bind error, cache hit/miss/
   bypass accounting, the LRU bound ([citus.plan_cache_size]), and —
   correctness-critical — the invalidation matrix: schema DDL, a shard
   move, a rebalance after node addition, and a replication-factor
   change between two EXECUTEs must each revalidate the cached plan;
   a stale deparse string must never execute.

   The chaos group then replays the story under a seeded storm:
   prepared executes run across crashes, partitions, dropped round
   trips and a mid-storm [citus_move_shard_placement]. Every execute
   that succeeds must return the row the key maps to (zero wrong-shard
   reads — the invariant a stale plan would break), and the same seed
   replays bit-for-bit. *)

let exec s sql = Engine.Instance.exec s sql

let counter cluster name =
  Obs.Metrics.counter_value (Cluster.Topology.metrics cluster) name

let gauge cluster name =
  Obs.Metrics.gauge_value (Cluster.Topology.metrics cluster) name

let make ?(workers = 3) ?(shard_count = 8) ?active_workers ?seed () =
  let cluster =
    match seed with
    | None -> Cluster.Topology.create ~workers ()
    | Some sd ->
      Cluster.Topology.create ~workers ~fault_seed:sd ~sched_seed:sd ()
  in
  let citus = Citus.Api.install ~shard_count ?active_workers cluster in
  let s = Citus.Api.connect citus in
  (cluster, citus, s)

let n_items = 8

let setup_items ?(n = n_items) s =
  ignore (exec s "CREATE TABLE items (key bigint PRIMARY KEY, val text)");
  ignore (exec s "SELECT create_distributed_table('items', 'key')");
  for k = 0 to n - 1 do
    ignore
      (exec s
         (Printf.sprintf "INSERT INTO items (key, val) VALUES (%d, 'v%d')" k k))
  done

let check_val s ~name k =
  match (Citus.Session.execute s name [ Datum.Int k ]).Engine.Instance.rows with
  | [ [| Datum.Text v |] ] ->
    Alcotest.(check string)
      (Printf.sprintf "EXECUTE %s(%d)" name k)
      (Printf.sprintf "v%d" k) v
  | rows ->
    Alcotest.failf "EXECUTE %s(%d): expected one row, got %d" name k
      (List.length rows)

let prepare_getv s =
  Citus.Session.prepare s ~name:"getv" "SELECT val FROM items WHERE key = $1"

(* --- lifecycle --- *)

let test_sql_lifecycle () =
  let _, _, s = make () in
  setup_items s;
  ignore (exec s "PREPARE getv AS SELECT val FROM items WHERE key = $1");
  (match (exec s "EXECUTE getv(3)").Engine.Instance.rows with
   | [ [| Datum.Text "v3" |] ] -> ()
   | _ -> Alcotest.fail "EXECUTE getv(3) wrong result");
  (* PostgreSQL semantics: duplicate names error, the registry is
     session-local, DEALLOCATE drops *)
  (match exec s "PREPARE getv AS SELECT 1" with
   | exception Engine.Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "duplicate PREPARE must fail");
  (match exec s "EXECUTE nosuch(1)" with
   | exception Engine.Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "EXECUTE of unknown name must fail");
  Alcotest.(check (list string)) "prepared_names" [ "getv" ]
    (Engine.Instance.prepared_names s);
  ignore (exec s "DEALLOCATE getv");
  (match exec s "EXECUTE getv(3)" with
   | exception Engine.Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "EXECUTE after DEALLOCATE must fail")

let test_session_surface () =
  let _, citus, s = make () in
  setup_items s;
  prepare_getv s;
  for k = 0 to n_items - 1 do
    check_val s ~name:"getv" k
  done;
  (* a second session has its own registry but shares the plan cache *)
  let s2 = Citus.Api.connect citus in
  Alcotest.(check (list string)) "registry is session-local" []
    (Citus.Session.prepared_names s2);
  Citus.Session.prepare s2 ~name:"getv" "SELECT val FROM items WHERE key = $1";
  check_val s2 ~name:"getv" 5;
  Citus.Session.deallocate s "getv";
  Alcotest.(check (list string)) "deallocate" []
    (Citus.Session.prepared_names s);
  Citus.Session.prepare s ~name:"a" "SELECT val FROM items WHERE key = $1";
  Citus.Session.prepare s ~name:"b" "SELECT key FROM items WHERE key = $1";
  Citus.Session.deallocate_all s;
  Alcotest.(check (list string)) "deallocate all" []
    (Citus.Session.prepared_names s)

let test_typed_bind_error () =
  let _, _, s = make () in
  setup_items s;
  Citus.Session.prepare s ~name:"skip"
    "SELECT val FROM items WHERE key = $2";
  match Citus.Session.execute s "skip" [ Datum.Int 3 ] with
  | exception Engine.Instance.Session_error m ->
    Alcotest.(check string) "typed bind error"
      "no value for parameter $2 in prepared statement skip" m
  | _ -> Alcotest.fail "missing $2 must fail with the typed bind error"

(* --- cache accounting --- *)

let test_cache_hits () =
  let cluster, _, s = make () in
  setup_items s;
  prepare_getv s;
  let rounds = 3 in
  for _ = 1 to rounds do
    for k = 0 to n_items - 1 do
      check_val s ~name:"getv" k
    done
  done;
  (* one shape: the first execute builds, every later one (any key)
     reuses the entry — bind-time pruning re-selects the shard *)
  Alcotest.(check int) "one build"
    1
    (counter cluster Obs.Metric_names.plancache_misses);
  Alcotest.(check int) "rest are hits"
    ((rounds * n_items) - 1)
    (counter cluster Obs.Metric_names.plancache_hits);
  Alcotest.(check int) "one entry" 1
    (int_of_float (gauge cluster Obs.Metric_names.plancache_entries))

let test_prepared_insert () =
  let cluster, _, s = make () in
  setup_items s;
  Citus.Session.prepare s ~name:"ins"
    "INSERT INTO items (key, val) VALUES ($1, $2)";
  for k = n_items to n_items + 5 do
    ignore
      (Citus.Session.execute s "ins"
         [ Datum.Int k; Datum.Text (Printf.sprintf "v%d" k) ])
  done;
  prepare_getv s;
  for k = n_items to n_items + 5 do
    check_val s ~name:"getv" k
  done;
  (* the INSERT shape was cached too: 6 executes, 1 build *)
  Alcotest.(check bool) "insert shape cached" true
    (counter cluster Obs.Metric_names.plancache_hits >= 5)

let test_uncacheable_bypass () =
  let cluster, _, s = make () in
  setup_items s;
  (* no distribution-column equality: scatter-gather every time *)
  Citus.Session.prepare s ~name:"scan" "SELECT count(*) FROM items";
  let count () =
    match (Citus.Session.execute s "scan" []).Engine.Instance.rows with
    | [ [| Datum.Int n |] ] -> Int64.to_int (Int64.of_int n)
    | _ -> Alcotest.fail "count(*) shape"
  in
  Alcotest.(check int) "first scan" n_items (count ());
  Alcotest.(check int) "second scan" n_items (count ());
  Alcotest.(check int) "both bypassed" 2
    (counter cluster Obs.Metric_names.plancache_bypass);
  Alcotest.(check int) "no hits"
    0
    (counter cluster Obs.Metric_names.plancache_hits)

let test_lru_bound () =
  let cluster, _, s = make () in
  setup_items s;
  ignore (exec s "SELECT citus_set_config('plan_cache_size', '2')");
  Citus.Session.prepare s ~name:"a" "SELECT val FROM items WHERE key = $1";
  Citus.Session.prepare s ~name:"b" "SELECT key FROM items WHERE key = $1";
  Citus.Session.prepare s ~name:"c"
    "SELECT key, val FROM items WHERE key = $1";
  List.iter
    (fun n -> ignore (Citus.Session.execute s n [ Datum.Int 1 ]))
    [ "a"; "b"; "c" ];
  Alcotest.(check bool) "evicted" true
    (counter cluster Obs.Metric_names.plancache_evictions >= 1);
  Alcotest.(check bool) "bounded" true
    (int_of_float (gauge cluster Obs.Metric_names.plancache_entries) <= 2);
  (* the evicted shape still executes correctly — it just rebuilds *)
  check_val s ~name:"a" 4

let test_cache_disabled () =
  let cluster, _, s = make () in
  setup_items s;
  ignore (exec s "SELECT citus_set_config('plan_cache_size', '0')");
  prepare_getv s;
  for k = 0 to n_items - 1 do
    check_val s ~name:"getv" k
  done;
  Alcotest.(check int) "no hits" 0
    (counter cluster Obs.Metric_names.plancache_hits);
  Alcotest.(check int) "no builds" 0
    (counter cluster Obs.Metric_names.plancache_misses);
  Alcotest.(check bool) "counted as bypass" true
    (counter cluster Obs.Metric_names.plancache_bypass >= n_items)

let test_stat_statements () =
  let _, _, s = make () in
  setup_items s;
  prepare_getv s;
  for k = 0 to 4 do
    check_val s ~name:"getv" k
  done;
  match (exec s "SELECT citus_stat_statements()").Engine.Instance.rows with
  | [ [| Datum.Json (Json.Arr rows) |] ] ->
    let shape =
      List.find_map
        (function
          | Json.Obj fields -> (
            match List.assoc_opt "query" fields with
            (* the shape key is the normalized (deparsed) text, params
               unbound — not the client's original spelling *)
            | Some (Json.Str q)
              when q = "SELECT val FROM items WHERE (key = $1)" -> Some fields
            | _ -> None)
          | _ -> None)
        rows
    in
    (match shape with
     | None -> Alcotest.fail "citus_stat_statements: shape row missing"
     | Some fields ->
       Alcotest.(check bool) "calls" true
         (List.assoc_opt "calls" fields = Some (Json.Num 5.0));
       Alcotest.(check bool) "hits" true
         (List.assoc_opt "cache_hits" fields = Some (Json.Num 4.0));
       Alcotest.(check bool) "misses" true
         (List.assoc_opt "cache_misses" fields = Some (Json.Num 1.0));
       Alcotest.(check bool) "tier recorded" true
         (match List.assoc_opt "tier" fields with
          | Some (Json.Str ("fast_path" | "router")) -> true
          | _ -> false))
  | _ -> Alcotest.fail "citus_stat_statements must return one json row"

(* --- the invalidation matrix ---

   Each leg executes, changes the world, executes again, and checks
   both that the answer is still the one the key maps to and that the
   cache noticed (an invalidation was counted). *)

let invalidations cluster =
  counter cluster Obs.Metric_names.plancache_invalidations

let test_invalidate_ddl () =
  let cluster, _, s = make () in
  setup_items s;
  prepare_getv s;
  check_val s ~name:"getv" 2;
  ignore (exec s "CREATE INDEX items_val ON items USING BTREE (val)");
  check_val s ~name:"getv" 2;
  Alcotest.(check int) "DDL invalidated the plan" 1 (invalidations cluster)

let test_invalidate_move () =
  let cluster, citus, s = make () in
  setup_items s;
  prepare_getv s;
  for k = 0 to n_items - 1 do
    check_val s ~name:"getv" k
  done;
  (* move the shard holding key 3 to a different worker *)
  let meta = citus.Citus.Api.metadata in
  let shard = Citus.Metadata.shard_for_value meta ~table:"items" (Datum.Int 3) in
  let home = Citus.Metadata.placement meta shard.Citus.Metadata.shard_id in
  let to_node =
    match
      List.find_opt
        (fun (n : Cluster.Topology.node) ->
          not (String.equal n.Cluster.Topology.node_name home))
        cluster.Cluster.Topology.workers
    with
    | Some n -> n.Cluster.Topology.node_name
    | None -> Alcotest.fail "no second worker"
  in
  ignore
    (exec s
       (Printf.sprintf "SELECT citus_move_shard_placement(%d, '%s')"
          shard.Citus.Metadata.shard_id to_node));
  (* every key still reads its own row — the cached plan must not
     route to the old placement *)
  for k = 0 to n_items - 1 do
    check_val s ~name:"getv" k
  done;
  Alcotest.(check bool) "move invalidated the plan" true
    (invalidations cluster >= 1)

let test_invalidate_rebalance () =
  (* start with shards packed on fewer workers, then add a node and
     rebalance between two EXECUTEs *)
  let cluster, _, s = make ~workers:3 ~active_workers:2 () in
  setup_items s;
  prepare_getv s;
  check_val s ~name:"getv" 1;
  ignore (exec s "SELECT citus_add_node('worker3')");
  ignore (exec s "SELECT rebalance_table_shards()");
  for k = 0 to n_items - 1 do
    check_val s ~name:"getv" k
  done;
  Alcotest.(check bool) "rebalance invalidated the plan" true
    (invalidations cluster >= 1)

let test_invalidate_replication_factor () =
  let cluster, _, s = make () in
  setup_items s;
  prepare_getv s;
  check_val s ~name:"getv" 1;
  ignore (exec s "SELECT citus_set_replication_factor(2)");
  check_val s ~name:"getv" 1;
  Alcotest.(check int) "factor change invalidated the plan" 1
    (invalidations cluster)

(* --- seeded chaos: prepared executes across a mid-storm shard move ---

   A lighter storm than test_chaos (reads only), aimed at the one
   invariant a stale cached plan would break: an EXECUTE that succeeds
   must return the row its key hashes to. Crashes, partitions and
   dropped round trips make placements fail over; two mid-storm
   citus_move_shard_placement calls change the placement map while
   cached plans are hot. *)

type outcome = Good of int | Wrong of string | Failed

let n_ops = 120
let chaos_step = 0.05

let schedule_storm cluster rng =
  let fault =
    match Cluster.Topology.fault cluster with
    | Some f -> f
    | None -> Alcotest.fail "cluster has no fault plan"
  in
  let workers =
    List.map
      (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
      cluster.Cluster.Topology.workers
  in
  let horizon = float_of_int n_ops *. chaos_step in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  for _ = 1 to 2 do
    let at = Random.State.float rng (horizon *. 0.8) in
    let down_for = 0.3 +. Random.State.float rng 1.0 in
    Sim.Fault.schedule_crash fault ~at ~down_for (pick workers)
  done;
  let at = Random.State.float rng (horizon *. 0.8) in
  Sim.Fault.schedule_partition
    ~heal_after:(0.5 +. Random.State.float rng 1.0)
    fault ~at ~from_:"coordinator" ~to_:(pick workers);
  Sim.Fault.set_drop_rate fault
    ~request:(Random.State.float rng 0.02)
    ~reply:(Random.State.float rng 0.02)

let ensure_prepared citus sref =
  if not (Engine.Instance.session_alive !sref) then begin
    sref := Citus.Api.connect citus;
    prepare_getv !sref
  end

let fire_move citus rng sref =
  ensure_prepared citus sref;
  let meta = citus.Citus.Api.metadata in
  let shards = Citus.Metadata.shards_of meta "items" in
  let sh = List.nth shards (Random.State.int rng (List.length shards)) in
  let workers =
    List.map
      (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
      citus.Citus.Api.cluster.Cluster.Topology.workers
  in
  let to_node = List.nth workers (Random.State.int rng (List.length workers)) in
  try
    ignore
      (exec !sref
         (Printf.sprintf "SELECT citus_move_shard_placement(%d, '%s')"
            sh.Citus.Metadata.shard_id to_node))
  with _ -> ()

let run_prepared_chaos ~seed =
  let cluster, citus, s = make ~seed () in
  Citus.Api.set_replication_factor citus 2;
  setup_items s;
  prepare_getv s;
  let clock = cluster.Cluster.Topology.clock in
  let sched_rng = Random.State.make [| seed; 0xfa07 |] in
  let wl_rng = Random.State.make [| seed; 0x0b5e |] in
  schedule_storm cluster sched_rng;
  let sref = ref s in
  let outcomes = ref [] in
  for i = 1 to n_ops do
    Sim.Clock.advance clock chaos_step;
    let k = Random.State.int wl_rng n_items in
    ensure_prepared citus sref;
    let o =
      match (Citus.Session.execute !sref "getv" [ Datum.Int k ]).rows with
      | [ [| Datum.Text v |] ] when String.equal v (Printf.sprintf "v%d" k) ->
        Good k
      | rows ->
        Wrong
          (Printf.sprintf "key %d got %d row(s): %s" k (List.length rows)
             (String.concat ";"
                (List.concat_map
                   (fun r -> Array.to_list (Array.map Datum.to_display r))
                   rows)))
      | exception _ -> Failed
    in
    outcomes := o :: !outcomes;
    if i mod 40 = 17 then fire_move citus wl_rng sref
  done;
  (cluster, List.rev !outcomes)

let test_chaos_seed seed () =
  let cluster, outcomes = run_prepared_chaos ~seed in
  List.iter
    (function
      | Wrong m -> Alcotest.failf "seed %d: wrong-shard read: %s" seed m
      | Good _ | Failed -> ())
    outcomes;
  let good = List.length (List.filter (function Good _ -> true | _ -> false) outcomes) in
  (* the storm must not drown the workload: most executes succeed *)
  Alcotest.(check bool)
    (Printf.sprintf "seed %d: %d/%d executes returned rows" seed good n_ops)
    true
    (good > n_ops / 2);
  (* and the cache must actually have been in play *)
  Alcotest.(check bool) "cache served hits under the storm" true
    (counter cluster Obs.Metric_names.plancache_hits > 0)

let seed_matrix = [ 1; 2; 3; 4 ]

let test_reproducible () =
  let _, a = run_prepared_chaos ~seed:7 in
  let _, b = run_prepared_chaos ~seed:7 in
  Alcotest.(check bool) "same seed, same outcome stream" true (a = b)

let () =
  Alcotest.run "prepared"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "sql PREPARE/EXECUTE/DEALLOCATE" `Quick
            test_sql_lifecycle;
          Alcotest.test_case "typed Session surface" `Quick
            test_session_surface;
          Alcotest.test_case "typed bind error" `Quick test_typed_bind_error;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hits after one build" `Quick test_cache_hits;
          Alcotest.test_case "prepared insert" `Quick test_prepared_insert;
          Alcotest.test_case "uncacheable shapes bypass" `Quick
            test_uncacheable_bypass;
          Alcotest.test_case "lru bound" `Quick test_lru_bound;
          Alcotest.test_case "plan_cache_size=0 disables" `Quick
            test_cache_disabled;
          Alcotest.test_case "citus_stat_statements" `Quick
            test_stat_statements;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "schema DDL" `Quick test_invalidate_ddl;
          Alcotest.test_case "shard move" `Quick test_invalidate_move;
          Alcotest.test_case "add node + rebalance" `Quick
            test_invalidate_rebalance;
          Alcotest.test_case "replication factor" `Quick
            test_invalidate_replication_factor;
        ] );
      ( "chaos",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Quick (test_chaos_seed seed))
          seed_matrix
        @ [
            Alcotest.test_case "same seed, same storm" `Quick
              test_reproducible;
          ] );
    ]
