(* Seeded chaos harness (§3.7): pgbench-style balance transfers run under
   a randomized fault schedule — node crashes with WAL-replay restarts,
   asymmetric partitions, per-round-trip request/reply loss, and one-shot
   crashes armed on PREPARE TRANSACTION. Every run is a pure function of
   its seed: the fault plan draws from [Sim.Fault]'s seeded RNG on the
   cluster's virtual clock and the workload from its own seeded RNG, so a
   failure reproduces with the printed seed.

   After the storm the harness quiesces (heal everything, bounce every
   node to shed orphaned in-memory transactions, run the maintenance
   daemon until recovery and repair drain) and checks the invariants that
   define correctness here:

   - atomicity: transfers are balance-preserving, so the total must be
     exactly the initial total no matter which subset committed;
   - no orphaned prepared transactions on any node;
   - no leaked commit records on the coordinator;
   - every circuit breaker back to Closed;
   - full replication restored (no Inactive placements, replicas of each
     shard bit-identical). *)

let n_keys = 24
let initial_balance = 100
let expected_total = n_keys * initial_balance
let n_txns = 40
let clock_step = 0.25

type outcome = Committed | Failed | Unknown

let outcome_name = function
  | Committed -> "committed"
  | Failed -> "failed"
  | Unknown -> "unknown"

let exec s sql = Engine.Instance.exec s sql

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | rows ->
    Alcotest.fail
      (Printf.sprintf "expected one int from %S, got %d rows" sql
         (List.length rows))

let fault_of cluster =
  match Cluster.Topology.fault cluster with
  | Some f -> f
  | None -> Alcotest.fail "cluster has no fault plan"

let make_cluster ~seed ~replication =
  (* the seed also drives the cooperative scheduler's ready-queue
     tiebreaks: fiber interleavings inside the executor / 2PC / move
     fan-outs are a fuzzed dimension of the storm, and same-seed runs
     replay the same interleaving bit-for-bit *)
  let cluster =
    Cluster.Topology.create ~workers:3 ~fault_seed:seed ~sched_seed:seed ()
  in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  Citus.Api.set_replication_factor citus replication;
  let s = Citus.Api.connect citus in
  ignore
    (exec s "CREATE TABLE accounts (key bigint PRIMARY KEY, balance bigint)");
  ignore (exec s "SELECT create_distributed_table('accounts', 'key')");
  for k = 0 to n_keys - 1 do
    ignore
      (exec s
         (Printf.sprintf
            "INSERT INTO accounts (key, balance) VALUES (%d, %d)" k
            initial_balance))
  done;
  (cluster, citus)

let node_of citus k =
  let meta = citus.Citus.Api.metadata in
  Citus.Metadata.placement meta
    (Citus.Metadata.shard_for_value meta ~table:"accounts" (Datum.Int k))
      .Citus.Metadata.shard_id

(* Two keys whose primary placements live on different workers, so a
   transfer between them is a genuine multi-node 2PC. *)
let cross_node_keys citus =
  let k1 = 0 in
  let rec find k =
    if String.equal (node_of citus k) (node_of citus k1) then find (k + 1)
    else k
  in
  (k1, find 1)

(* --- the workload --- *)

let ensure_session citus sref =
  if not (Engine.Instance.session_alive !sref) then
    sref := Citus.Api.connect citus

(* One transfer. The outcome taxonomy matters: an error before COMMIT is
   a clean abort (Failed); an error during COMMIT leaves the true outcome
   undetermined at the client (Unknown) — 2PC recovery decides it later. *)
let transfer citus sref ~k1 ~k2 ~amount =
  ensure_session citus sref;
  let s = !sref in
  match
    ignore (exec s "BEGIN");
    ignore
      (exec s
         (Printf.sprintf
            "UPDATE accounts SET balance = balance - %d WHERE key = %d" amount
            k1));
    ignore
      (exec s
         (Printf.sprintf
            "UPDATE accounts SET balance = balance + %d WHERE key = %d" amount
            k2))
  with
  | () -> (
    match exec s "COMMIT" with
    | _ -> Committed
    | exception _ ->
      (try ignore (exec s "ROLLBACK") with _ -> ());
      Unknown)
  | exception _ ->
    (try ignore (exec s "ROLLBACK") with _ -> ());
    Failed

(* --- the fault schedule --- *)

let schedule_faults cluster fault rng =
  let workers =
    List.map
      (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
      cluster.Cluster.Topology.workers
  in
  let horizon = float_of_int n_txns *. clock_step in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let nodes = "coordinator" :: workers in
  (* crashes with WAL-replay restarts *)
  for _ = 1 to 3 do
    let at = Random.State.float rng (horizon *. 0.8) in
    let down_for = 0.5 +. Random.State.float rng 2.0 in
    Sim.Fault.schedule_crash fault ~at ~down_for (pick nodes)
  done;
  (* asymmetric partitions that heal on their own *)
  for _ = 1 to 3 do
    let at = Random.State.float rng (horizon *. 0.8) in
    let heal_after = 0.5 +. Random.State.float rng 2.0 in
    let w = pick workers in
    let from_, to_ =
      if Random.State.bool rng then ("coordinator", w) else (w, "coordinator")
    in
    Sim.Fault.schedule_partition ~heal_after fault ~at ~from_ ~to_
  done;
  (* background request/reply loss *)
  Sim.Fault.set_drop_rate fault
    ~request:(Random.State.float rng 0.03)
    ~reply:(Random.State.float rng 0.03);
  (* sometimes, a worker dies right between PREPARE and COMMIT PREPARED *)
  if Random.State.bool rng then
    Sim.Fault.arm_crash_after fault ~node:(pick workers)
      ~matching:"PREPARE TRANSACTION"
      ~lose_reply:(Random.State.bool rng) ()

(* --- quiescence --- *)

let quiesce cluster citus =
  let fault = fault_of cluster in
  Sim.Fault.quiesce fault;
  (* bounce every node: lost round trips can leave orphaned in-memory
     transactions holding locks on workers; a crash/restart sheds them
     while everything durable (prepared transactions, commit records,
     committed rows) survives the WAL replay *)
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Sim.Fault.crash_now fault n.Cluster.Topology.node_name;
      Sim.Fault.restart_now fault n.Cluster.Topology.node_name)
    (Cluster.Topology.all_nodes cluster);
  Sim.Clock.advance cluster.Cluster.Topology.clock 30.0;
  (* recovery + repair are idempotent; three passes drain multi-step
     resolutions (commit prepared, then GC, then re-replication) *)
  for _ = 1 to 3 do
    Citus.Api.maintenance citus
  done

(* A post-storm write pass: touches every key (so every replica takes a
   write), closing half-open breakers through real successes. The +0
   update is balance-neutral by construction. *)
let write_pass citus =
  let s = Citus.Api.connect citus in
  for k = 0 to n_keys - 1 do
    ignore
      (Citus.Api.exec_with_retries citus s
         (Printf.sprintf
            "UPDATE accounts SET balance = balance + 0 WHERE key = %d" k))
  done

(* --- trace/metric conservation ---

   The observability layer must survive the storm too: every span opened
   was closed (exceptions included), nothing is left on the open-span
   stack, no gauge went negative, and the breaker-trip gauge settled
   back to zero along with the breakers themselves. *)

let check_obs_conservation ~seed cluster =
  let msg m = Printf.sprintf "[seed %d] %s" seed m in
  let obs = Cluster.Topology.obs cluster in
  Alcotest.(check int)
    (msg "every span opened was closed")
    (Obs.Trace.started obs.Obs.trace)
    (Obs.Trace.finished obs.Obs.trace);
  Alcotest.(check int) (msg "no span left open") 0
    (Obs.Trace.open_count obs.Obs.trace);
  let snap = Obs.Metrics.snapshot obs.Obs.metrics in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool)
        (msg (Printf.sprintf "gauge %s non-negative (%f)" name v))
        true (v >= 0.0))
    snap.Obs.Metrics.s_gauges;
  Alcotest.(check (float 0.0))
    (msg "breaker-trip gauge settled")
    0.0
    (Obs.Metrics.gauge_value obs.Obs.metrics "breaker.tripped");
  let counter name =
    Obs.Metrics.counter_value obs.Obs.metrics name
  in
  Alcotest.(check bool)
    (msg "rebalance moves: completed <= started")
    true
    (counter "rebalance.moves_completed" <= counter "rebalance.moves_started")

(* --- invariants --- *)

let check_invariants ~seed cluster citus =
  let msg m = Printf.sprintf "[seed %d] %s" seed m in
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let s = Citus.Api.connect citus in
  (* cross-node atomicity: every transfer conserved the total *)
  Alcotest.(check int)
    (msg "total balance conserved")
    expected_total
    (one_int s "SELECT sum(balance) FROM accounts");
  (* no orphaned prepared transactions anywhere *)
  List.iter
    (fun (n : Cluster.Topology.node) ->
      let mgr = Engine.Instance.txn_manager n.Cluster.Topology.instance in
      Alcotest.(check int)
        (msg
           (Printf.sprintf "no orphaned prepared transactions on %s"
              n.Cluster.Topology.node_name))
        0
        (List.length (Txn.Manager.prepared_transactions mgr)))
    (Cluster.Topology.all_nodes cluster);
  (* no leaked commit records *)
  Alcotest.(check int)
    (msg "commit records drained")
    0
    (Citus.Twopc.commit_record_count st);
  (* every breaker back to Closed *)
  List.iter
    (fun (r : Citus.Health.node_report) ->
      Alcotest.(check string)
        (msg (Printf.sprintf "breaker closed on %s" r.Citus.Health.nr_node))
        "closed"
        (Citus.Health.breaker_name
           (Citus.Health.breaker_state st.Citus.State.health
              r.Citus.Health.nr_node)))
    (Citus.Health.report st.Citus.State.health);
  (* full replication restored *)
  Alcotest.(check int)
    (msg "no inactive placements")
    0
    (List.length (Citus.Metadata.inactive_placements meta));
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      let shard_table = Citus.Metadata.shard_name sh in
      let replicas =
        Citus.Metadata.placements meta sh.Citus.Metadata.shard_id
      in
      let rows_on node =
        let inst =
          (Cluster.Topology.find_node cluster node).Cluster.Topology.instance
        in
        let rs = Engine.Instance.connect inst in
        (exec rs
           (Printf.sprintf "SELECT key, balance FROM %s ORDER BY key"
              shard_table))
          .Engine.Instance.rows
      in
      let show rows =
        String.concat "; "
          (List.map
             (fun row ->
               String.concat ","
                 (Array.to_list
                    (Array.map (Format.asprintf "%a" Datum.pp) row)))
             rows)
      in
      match replicas with
      | [] -> Alcotest.fail (msg (shard_table ^ " lost every placement"))
      | first :: rest ->
        let reference = rows_on first in
        List.iter
          (fun node ->
            let got = rows_on node in
            if got <> reference then
              Alcotest.fail
                (msg
                   (Printf.sprintf "%s diverged: %s has [%s], %s has [%s]"
                      shard_table first (show reference) node (show got))))
          rest)
    (Citus.Metadata.shards_of meta "accounts")

(* --- one full chaos run --- *)

(* Mid-storm shard move: fire citus_move_shard_placement from SQL while
   transfers and faults are in flight. A move that hits a dead node or a
   cutover lock conflict fails cleanly — the invariants only require
   that whatever it did is consistent and fully accounted. *)
let fire_move cluster citus wl_rng sref =
  ensure_session citus sref;
  let meta = citus.Citus.Api.metadata in
  let shards = Citus.Metadata.shards_of meta "accounts" in
  let sh = List.nth shards (Random.State.int wl_rng (List.length shards)) in
  let workers =
    List.map
      (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
      cluster.Cluster.Topology.workers
  in
  let to_node = List.nth workers (Random.State.int wl_rng (List.length workers)) in
  try
    ignore
      (exec !sref
         (Printf.sprintf "SELECT citus_move_shard_placement(%d, '%s')"
            sh.Citus.Metadata.shard_id to_node))
  with _ -> ()

let run_chaos ?(moves = false) ~seed () =
  let cluster, citus = make_cluster ~seed ~replication:2 in
  (* the storm runs fully traced: conservation and reproducibility of
     the span stream are part of the checked surface *)
  Obs.Trace.set_enabled (Cluster.Topology.trace cluster) true;
  let fault = fault_of cluster in
  let clock = cluster.Cluster.Topology.clock in
  (* distinct streams: the fault plan owns the fault RNG; the schedule and
     the workload draw from their own, all derived from the seed *)
  let sched_rng = Random.State.make [| seed; 0xfa07 |] in
  let wl_rng = Random.State.make [| seed; 0x0b5e |] in
  schedule_faults cluster fault sched_rng;
  let sref = ref (Citus.Api.connect citus) in
  let outcomes = ref [] in
  for i = 1 to n_txns do
    Sim.Clock.advance clock clock_step;
    let k1 = Random.State.int wl_rng n_keys in
    let k2 = (k1 + 1 + Random.State.int wl_rng (n_keys - 1)) mod n_keys in
    let amount = 1 + Random.State.int wl_rng 10 in
    outcomes := transfer citus sref ~k1 ~k2 ~amount :: !outcomes;
    if moves && i mod 10 = 3 then fire_move cluster citus wl_rng sref;
    (* occasional reads keep the failover path under fire too *)
    if i mod 5 = 0 then begin
      ensure_session citus sref;
      try ignore (exec !sref "SELECT count(*) FROM accounts") with _ -> ()
    end;
    (* a mid-storm maintenance pass: recovery must be idempotent and
       partition-safe while faults are still active. Repair may hit an
       unreachable node and give up for this round — that is fine, the
       post-quiescence passes settle it *)
    if i = n_txns / 2 then ( try Citus.Api.maintenance citus with _ -> ())
  done;
  quiesce cluster citus;
  write_pass citus;
  Citus.Api.maintenance citus;
  let s = Citus.Api.connect citus in
  let total = one_int s "SELECT sum(balance) FROM accounts" in
  (cluster, citus, List.rev !outcomes, total)

(* The seed matrix run by `dune runtest` / `dune build @chaos`.
   CHAOS_SEEDS=n widens it (n storm seeds, and max(1, n/2) move seeds)
   without touching the repro contract: every check is tagged [seed N]
   and any failure replays by running that seed. *)
let chaos_seeds =
  match Sys.getenv_opt "CHAOS_SEEDS" with
  | None -> 8
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ ->
      invalid_arg
        (Printf.sprintf "CHAOS_SEEDS must be a positive integer, got %S" v))

let seed_matrix = List.init chaos_seeds (fun i -> i + 1)

let test_seed ?moves seed () =
  let cluster, citus, outcomes, _total = run_chaos ?moves ~seed () in
  check_invariants ~seed cluster citus;
  check_obs_conservation ~seed cluster;
  (* at least something must have happened: a schedule that failed every
     transaction would vacuously satisfy atomicity *)
  Alcotest.(check bool)
    (Printf.sprintf "[seed %d] some transfers committed" seed)
    true
    (List.exists (fun o -> o = Committed) outcomes)

(* chaos over the rebalancer: same storm, with shard moves fired
   mid-workload; some seeds move onto dead nodes, some cut over under
   lock contention *)
let move_seed_matrix = List.init (max 1 (chaos_seeds / 2)) (fun i -> i + 11)

let test_move_seed seed () =
  let cluster, citus, outcomes, _total = run_chaos ~moves:true ~seed () in
  check_invariants ~seed cluster citus;
  check_obs_conservation ~seed cluster;
  Alcotest.(check bool)
    (Printf.sprintf "[seed %d] some transfers committed" seed)
    true
    (List.exists (fun o -> o = Committed) outcomes)

(* --- bit-for-bit reproducibility --- *)

let observable (cluster, _citus, outcomes, total) =
  let obs = Cluster.Topology.obs cluster in
  ( Sim.Fault.trace (fault_of cluster),
    List.map outcome_name outcomes,
    total,
    Obs.Metrics.render (Obs.Metrics.snapshot obs.Obs.metrics),
    Obs.Trace.render_tree (Obs.Trace.spans obs.Obs.trace) )

let test_reproducible () =
  let trace_a, outcomes_a, total_a, metrics_a, spans_a =
    observable (run_chaos ~moves:true ~seed:5 ())
  in
  let trace_b, outcomes_b, total_b, metrics_b, spans_b =
    observable (run_chaos ~moves:true ~seed:5 ())
  in
  Alcotest.(check (list string)) "same fault trace" trace_a trace_b;
  Alcotest.(check (list string)) "same outcomes" outcomes_a outcomes_b;
  Alcotest.(check int) "same total" total_a total_b;
  (* ISSUE acceptance: bit-identical metric snapshot and span tree *)
  Alcotest.(check string) "bit-identical metric snapshot" metrics_a metrics_b;
  Alcotest.(check (list string)) "bit-identical span tree" spans_a spans_b;
  let trace_c, _, _, _, _ = observable (run_chaos ~seed:6 ()) in
  Alcotest.(check bool) "different seed, different schedule" true
    (trace_a <> trace_c)

(* --- targeted: worker crash between PREPARE and COMMIT PREPARED, with a
   concurrent (asymmetric) partition of the other participant --- *)

(* Abort-side convergence. The transfer's first-prepared worker crashes
   right after PREPARE TRANSACTION executes; the other participant's
   reply link is already cut, so its PREPARE executes but looks failed.
   The coordinator aborts, no commit record becomes durable, and recovery
   must roll both prepared transactions back once the storm clears. *)
let test_prepare_crash_with_partition ~lose_reply () =
  let cluster, citus = make_cluster ~seed:42 ~replication:1 in
  let fault = fault_of cluster in
  let k1, k2 = cross_node_keys citus in
  let w1 = node_of citus k1 and w2 = node_of citus k2 in
  let s = Citus.Api.connect citus in
  ignore (exec s "BEGIN");
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance - 7 WHERE key = %d" k1));
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance + 7 WHERE key = %d" k2));
  (* txn_conns holds [w2's conn; w1's conn], so PREPARE reaches w2 first:
     arm the crash there, and cut w1's reply link so its PREPARE (if
     reached) executes without the coordinator learning of it *)
  Sim.Fault.arm_crash_after fault ~node:w2 ~matching:"PREPARE TRANSACTION"
    ~lose_reply ();
  Sim.Fault.partition_link fault ~from_:w1 ~to_:"coordinator";
  (match exec s "COMMIT" with
   | _ -> Alcotest.fail "COMMIT had to fail: a participant just crashed"
   | exception _ -> ());
  (try ignore (exec s "ROLLBACK") with _ -> ());
  (* the crashed worker holds its prepared transaction durably *)
  Alcotest.(check bool) "w2 is down" false (Sim.Fault.node_up fault w2);
  (* storm over: restart the worker (WAL replay), heal the link, recover *)
  Sim.Fault.quiesce fault;
  Sim.Clock.advance cluster.Cluster.Topology.clock 30.0;
  for _ = 1 to 3 do
    Citus.Api.maintenance citus
  done;
  let st = Citus.Api.coordinator_state citus in
  let s = Citus.Api.connect citus in
  Alcotest.(check int) "transfer rolled back everywhere: total intact"
    expected_total
    (one_int s "SELECT sum(balance) FROM accounts");
  Alcotest.(check int) "debit absent" initial_balance
    (one_int s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k1));
  Alcotest.(check int) "credit absent" initial_balance
    (one_int s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k2));
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Alcotest.(check int)
        (Printf.sprintf "no prepared transactions left on %s"
           n.Cluster.Topology.node_name)
        0
        (List.length
           (Txn.Manager.prepared_transactions
              (Engine.Instance.txn_manager n.Cluster.Topology.instance))))
    (Cluster.Topology.all_nodes cluster);
  Alcotest.(check int) "no commit records" 0
    (Citus.Twopc.commit_record_count st)

(* Commit-side convergence: the last-prepared worker crashes after its
   PREPARE succeeds, so the coordinator commits locally with durable
   commit records, loses the COMMIT PREPARED fan-out to the dead node,
   and recovery must finish the commit there after the restart. *)
let test_prepare_crash_commit_side () =
  let cluster, citus = make_cluster ~seed:43 ~replication:1 in
  let fault = fault_of cluster in
  let k1, k2 = cross_node_keys citus in
  let w1 = node_of citus k1 in
  let st = Citus.Api.coordinator_state citus in
  let s = Citus.Api.connect citus in
  ignore (exec s "BEGIN");
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance - 7 WHERE key = %d" k1));
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance + 7 WHERE key = %d" k2));
  (* w1's conn is prepared last: its PREPARE succeeds, then it dies *)
  Sim.Fault.arm_crash_after fault ~node:w1 ~matching:"PREPARE TRANSACTION" ();
  ignore (exec s "COMMIT");
  (* the client saw success; the dead participant is owed a COMMIT
     PREPARED, witnessed by the retained commit record *)
  Alcotest.(check bool) "commit record retained for the dead node" true
    (Citus.Twopc.commit_record_count st > 0);
  Alcotest.(check int) "fan-out failure counted" 1
    (Citus.Health.failed_commits st.Citus.State.health w1);
  Sim.Fault.restart_now fault w1;
  Sim.Clock.advance cluster.Cluster.Topology.clock 30.0;
  for _ = 1 to 3 do
    Citus.Api.maintenance citus
  done;
  let s = Citus.Api.connect citus in
  Alcotest.(check int) "debit committed by recovery" (initial_balance - 7)
    (one_int s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k1));
  Alcotest.(check int) "credit committed" (initial_balance + 7)
    (one_int s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k2));
  Alcotest.(check int) "commit records drained" 0
    (Citus.Twopc.commit_record_count st);
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Alcotest.(check int)
        (Printf.sprintf "no prepared transactions left on %s"
           n.Cluster.Topology.node_name)
        0
        (List.length
           (Txn.Manager.prepared_transactions
              (Engine.Instance.txn_manager n.Cluster.Topology.instance))))
    (Cluster.Topology.all_nodes cluster)

let () =
  Alcotest.run "chaos"
    [
      ( "seed-matrix",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Quick (test_seed seed))
          seed_matrix );
      ( "move-matrix",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "moves under fire, seed %d" seed)
              `Quick (test_move_seed seed))
          move_seed_matrix );
      ( "reproducibility",
        [ Alcotest.test_case "same seed, same run" `Quick test_reproducible ] );
      ( "targeted-2pc",
        [
          Alcotest.test_case "prepare crash + partition (reply kept)" `Quick
            (test_prepare_crash_with_partition ~lose_reply:false);
          Alcotest.test_case "prepare crash + partition (reply lost)" `Quick
            (test_prepare_crash_with_partition ~lose_reply:true);
          Alcotest.test_case "prepare crash, commit side" `Quick
            test_prepare_crash_commit_side;
        ] );
    ]
