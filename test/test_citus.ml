(* Integration tests for the Citus layer: metadata, planners, distributed
   execution, 2PC, deadlock detection, COPY, INSERT..SELECT, DDL, MX. *)

let make ?(workers = 2) ?(shard_count = 8) () =
  let cluster = Cluster.Topology.create ~workers () in
  let citus = Citus.Api.install ~shard_count cluster in
  let s = Citus.Api.connect citus in
  (cluster, citus, s)

let exec s sql = Engine.Instance.exec s sql

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | rows ->
    Alcotest.fail
      (Printf.sprintf "expected one int from %S, got %d rows" sql
         (List.length rows))

let check_int s msg expected sql = Alcotest.(check int) msg expected (one_int s sql)

let setup_items s =
  ignore (exec s "CREATE TABLE items (key bigint PRIMARY KEY, val text, qty bigint)");
  ignore (exec s "SELECT create_distributed_table('items', 'key')")

let load_items ?(n = 40) s =
  ignore (exec s "BEGIN");
  for i = 1 to n do
    ignore
      (exec s
         (Printf.sprintf "INSERT INTO items (key, val, qty) VALUES (%d, 'v%d', %d)"
            i i (i mod 5)))
  done;
  ignore (exec s "COMMIT")

(* --- metadata --- *)

let test_metadata_shards () =
  let _, citus, s = make () in
  setup_items s;
  let shards = Citus.Metadata.shards_of citus.Citus.Api.metadata "items" in
  Alcotest.(check int) "8 shards" 8 (List.length shards);
  (* ranges tile the int32 space *)
  let sorted =
    List.sort
      (fun (a : Citus.Metadata.shard) b -> Int32.compare a.min_hash b.min_hash)
      shards
  in
  let first = List.hd sorted and last = List.nth sorted 7 in
  Alcotest.(check int32) "starts at min" Int32.min_int first.Citus.Metadata.min_hash;
  Alcotest.(check int32) "ends at max" Int32.max_int last.Citus.Metadata.max_hash;
  (* round-robin over both workers *)
  let nodes =
    List.map
      (fun (sh : Citus.Metadata.shard) ->
        Citus.Metadata.placement citus.Citus.Api.metadata sh.shard_id)
      shards
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string)) "both workers used" [ "worker1"; "worker2" ] nodes

let test_colocation () =
  let _, citus, s = make () in
  setup_items s;
  ignore (exec s "CREATE TABLE orders (key bigint, item bigint, n bigint)");
  ignore (exec s "SELECT create_distributed_table('orders', 'key', 'items')");
  Alcotest.(check bool) "colocated" true
    (Citus.Metadata.colocated citus.Citus.Api.metadata [ "items"; "orders" ]);
  (* aligned placements *)
  let meta = citus.Citus.Api.metadata in
  List.iter2
    (fun (a : Citus.Metadata.shard) (b : Citus.Metadata.shard) ->
      Alcotest.(check string) "same node"
        (Citus.Metadata.placement meta a.shard_id)
        (Citus.Metadata.placement meta b.shard_id);
      Alcotest.(check int32) "same range" a.min_hash b.min_hash)
    (Citus.Metadata.shards_of meta "items")
    (Citus.Metadata.shards_of meta "orders")

let test_shard_for_value_deterministic () =
  let _, citus, s = make () in
  setup_items s;
  let meta = citus.Citus.Api.metadata in
  let s1 = Citus.Metadata.shard_for_value meta ~table:"items" (Datum.Int 42) in
  let s2 = Citus.Metadata.shard_for_value meta ~table:"items" (Datum.Int 42) in
  Alcotest.(check int) "stable" s1.Citus.Metadata.shard_id s2.Citus.Metadata.shard_id

(* --- routing + CRUD --- *)

let test_distributed_crud () =
  let _, _, s = make () in
  setup_items s;
  load_items s;
  check_int s "count across shards" 40 "SELECT count(*) FROM items";
  (match (exec s "SELECT val FROM items WHERE key = 7").Engine.Instance.rows with
   | [ [| Datum.Text "v7" |] ] -> ()
   | _ -> Alcotest.fail "routed select failed");
  ignore (exec s "UPDATE items SET qty = 99 WHERE key = 7");
  check_int s "routed update" 99 "SELECT qty FROM items WHERE key = 7";
  ignore (exec s "DELETE FROM items WHERE key = 7");
  check_int s "routed delete" 0 "SELECT count(*) FROM items WHERE key = 7";
  check_int s "others untouched" 39 "SELECT count(*) FROM items"

let test_data_on_workers () =
  let cluster, citus, s = make () in
  setup_items s;
  load_items s;
  let total_on_workers =
    List.fold_left
      (fun acc (node : Cluster.Topology.node) ->
        let ws = Engine.Instance.connect node.instance in
        let meta = citus.Citus.Api.metadata in
        List.fold_left
          (fun acc (sh : Citus.Metadata.shard) ->
            if
              String.equal
                (Citus.Metadata.placement meta sh.shard_id)
                node.Cluster.Topology.node_name
            then
              acc
              + one_int ws
                  (Printf.sprintf "SELECT count(*) FROM %s"
                     (Citus.Metadata.shard_name sh))
            else acc)
          acc
          (Citus.Metadata.shards_of meta "items"))
      0 (Cluster.Topology.data_nodes cluster)
  in
  Alcotest.(check int) "all rows on workers" 40 total_on_workers

let test_planner_tiers () =
  let _, citus, s = make () in
  setup_items s;
  let meta = citus.Citus.Api.metadata in
  let catalog =
    Engine.Instance.catalog (Engine.Instance.session_instance s)
  in
  let plan sql =
    let stmt = Sqlfront.Parser.parse_statement sql in
    let _plan, tier =
      Citus.Planner.plan meta ~catalog ~local_name:"coordinator" stmt
    in
    Citus.Planner.tier_name tier
  in
  Alcotest.(check string) "fast path" "fast path"
    (plan "SELECT * FROM items WHERE key = 5");
  Alcotest.(check string) "fast path update" "fast path"
    (plan "UPDATE items SET qty = 1 WHERE key = 5");
  Alcotest.(check string) "pushdown" "logical pushdown"
    (plan "SELECT count(*) FROM items");
  Alcotest.(check string) "parallel dml" "parallel DML"
    (plan "DELETE FROM items WHERE qty = 3");
  ignore (exec s "CREATE TABLE dims (id bigint, name text)");
  ignore (exec s "SELECT create_reference_table('dims')");
  Alcotest.(check string) "router join" "router"
    (plan
       "SELECT items.val, dims.name FROM items JOIN dims ON items.qty = dims.id \
        WHERE items.key = 3")

let test_multi_row_insert_split () =
  let _, _, s = make () in
  setup_items s;
  let r =
    exec s
      "INSERT INTO items (key, val, qty) VALUES (100, 'a', 1), (200, 'b', 2), (300, 'c', 3)"
  in
  Alcotest.(check int) "3 inserted" 3 r.Engine.Instance.affected;
  check_int s "all visible" 3 "SELECT count(*) FROM items"

let test_insert_requires_dist_column () =
  let _, _, s = make () in
  setup_items s;
  match exec s "INSERT INTO items (val) VALUES ('x')" with
  | exception Engine.Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "insert without dist column should fail"

(* --- pushdown --- *)

let test_pushdown_aggregates () =
  let _, _, s = make () in
  setup_items s;
  load_items s;
  check_int s "sum" (List.init 40 (fun i -> (i + 1) mod 5) |> List.fold_left ( + ) 0)
    "SELECT sum(qty) FROM items";
  check_int s "min" 1 "SELECT min(key) FROM items";
  check_int s "max" 40 "SELECT max(key) FROM items";
  (match (exec s "SELECT avg(qty) FROM items").Engine.Instance.rows with
   | [ [| Datum.Float f |] ] -> Alcotest.(check (float 0.001)) "avg" 2.0 f
   | _ -> Alcotest.fail "avg failed")

let test_pushdown_group_by () =
  let _, _, s = make () in
  setup_items s;
  load_items s;
  let rows =
    (exec s
       "SELECT qty, count(*) FROM items GROUP BY qty ORDER BY qty ASC")
      .Engine.Instance.rows
  in
  Alcotest.(check int) "5 groups" 5 (List.length rows);
  List.iter
    (fun row ->
      match row with
      | [| Datum.Int _; Datum.Int 8 |] -> ()
      | _ -> Alcotest.fail "each qty bucket has 8 rows")
    rows

let test_pushdown_order_limit () =
  let _, _, s = make () in
  setup_items s;
  load_items s;
  match
    (exec s "SELECT key FROM items ORDER BY key DESC LIMIT 3").Engine.Instance.rows
  with
  | [ [| Datum.Int 40 |]; [| Datum.Int 39 |]; [| Datum.Int 38 |] ] -> ()
  | _ -> Alcotest.fail "order/limit merge failed"

let test_pushdown_colocated_join () =
  let _, _, s = make () in
  setup_items s;
  ignore (exec s "CREATE TABLE orders (key bigint, amount bigint)");
  ignore (exec s "SELECT create_distributed_table('orders', 'key', 'items')");
  load_items s;
  ignore (exec s "BEGIN");
  for i = 1 to 40 do
    ignore
      (exec s (Printf.sprintf "INSERT INTO orders (key, amount) VALUES (%d, %d)" i (i * 10)))
  done;
  ignore (exec s "COMMIT");
  check_int s "colocated join" 40
    "SELECT count(*) FROM items JOIN orders ON items.key = orders.key";
  check_int s "join with filter + agg" 360
    "SELECT sum(orders.amount) FROM items JOIN orders ON items.key = orders.key WHERE items.key <= 8"

let test_pushdown_reference_join () =
  let _, _, s = make () in
  setup_items s;
  ignore (exec s "CREATE TABLE dims (id bigint, label text)");
  ignore (exec s "SELECT create_reference_table('dims')");
  ignore (exec s "INSERT INTO dims VALUES (0, 'zero'), (1, 'one'), (2, 'two'), (3, 'three'), (4, 'four')");
  load_items s;
  check_int s "dist x ref join" 40
    "SELECT count(*) FROM items JOIN dims ON items.qty = dims.id"

let test_non_colocated_join_rejected () =
  let _, citus, s = make () in
  setup_items s;
  ignore (exec s "CREATE TABLE others (k bigint, v bigint)");
  ignore (exec s "SELECT create_distributed_table('others', 'k')");
  (* the pushdown planner itself must reject the non-co-located join ... *)
  let meta = citus.Citus.Api.metadata in
  let catalog = Engine.Instance.catalog (Engine.Instance.session_instance s) in
  let sel =
    Sqlfront.Parser.parse_select
      "SELECT count(*) FROM items JOIN others ON items.qty = others.v"
  in
  (match Citus.Planner.plan_pushdown_select meta ~catalog sel with
   | exception Citus.Planner.Unsupported _ -> ()
   | _ -> Alcotest.fail "pushdown should reject the non-co-located join");
  (* ... but the full planner chain falls through to the join-order
     planner, which broadcasts the small side and answers it *)
  check_int s "join-order planner answers it" 0
    "SELECT count(*) FROM items JOIN others ON items.qty = others.v"

let test_venicedb_nested_subquery_pushdown () =
  let _, _, s = make () in
  ignore (exec s "CREATE TABLE reports (deviceid bigint, metric bigint, build text)");
  ignore (exec s "SELECT create_distributed_table('reports', 'deviceid')");
  ignore (exec s "BEGIN");
  for d = 1 to 20 do
    for r = 1 to 3 do
      ignore
        (exec s
           (Printf.sprintf
              "INSERT INTO reports (deviceid, metric, build) VALUES (%d, %d, 'b1')"
              d (d * r)))
    done
  done;
  ignore (exec s "COMMIT");
  (* avg of per-device averages: the subquery groups by the distribution
     column, so it pushes down whole (§5) *)
  match
    (exec s
       "SELECT avg(device_avg) FROM (SELECT deviceid, avg(metric) AS device_avg \
        FROM reports WHERE build = 'b1' GROUP BY deviceid) AS subq")
      .Engine.Instance.rows
  with
  | [ [| Datum.Float f |] ] -> Alcotest.(check (float 0.001)) "avg of avgs" 21.0 f
  | _ -> Alcotest.fail "venicedb query failed"

let test_subquery_group_without_dist_rejected () =
  let _, _, s = make () in
  setup_items s;
  match
    exec s
      "SELECT avg(c) FROM (SELECT qty, count(*) AS c FROM items GROUP BY qty) AS x"
  with
  | exception Engine.Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "subquery grouped off the dist column should be rejected"

let test_count_distinct_with_dist_group () =
  let _, _, s = make () in
  setup_items s;
  load_items s;
  (* grouped by dist col: allowed *)
  let rows =
    (exec s
       "SELECT key, count(DISTINCT qty) FROM items GROUP BY key ORDER BY key LIMIT 5")
      .Engine.Instance.rows
  in
  Alcotest.(check int) "5 rows" 5 (List.length rows);
  (* without dist col grouping: rejected *)
  match exec s "SELECT count(DISTINCT qty) FROM items" with
  | exception Engine.Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "global count distinct should be rejected"

let test_shard_pruning_in_list () =
  let _, citus, s = make () in
  setup_items s;
  load_items s;
  let meta = citus.Citus.Api.metadata in
  let catalog = Engine.Instance.catalog (Engine.Instance.session_instance s) in
  let plan sql =
    fst
      (Citus.Planner.plan meta ~catalog ~local_name:"coordinator"
         (Sqlfront.Parser.parse_statement sql))
  in
  (* IN list restricts the task fan-out to the owning shards *)
  let tasks sql = List.length (Citus.Plan.tasks_of (plan sql)) in
  Alcotest.(check bool) "IN list pruned" true
    (tasks "SELECT count(*) FROM items WHERE key IN (1, 2, 3)" <= 3);
  Alcotest.(check int) "unconstrained hits all shards" 8
    (tasks "SELECT count(*) FROM items");
  Alcotest.(check bool) "pruned DML" true
    (tasks "UPDATE items SET qty = 0 WHERE key IN (5, 6)" <= 2);
  (* correctness preserved *)
  check_int s "IN result" 3 "SELECT count(*) FROM items WHERE key IN (1, 2, 3)";
  ignore (exec s "UPDATE items SET qty = 0 WHERE key IN (5, 6)");
  check_int s "DML applied" 2 "SELECT count(*) FROM items WHERE qty = 0 AND key IN (5, 6)"

let test_local_tables_coexist () =
  let _, _, s = make () in
  setup_items s;
  (* plain local tables keep working untouched next to citus tables *)
  ignore (exec s "CREATE TABLE scratch (x bigint)");
  ignore (exec s "INSERT INTO scratch VALUES (1), (2)");
  check_int s "local query" 2 "SELECT count(*) FROM scratch";
  (* joining local with distributed is not supported: a clear error *)
  match exec s "SELECT count(*) FROM scratch JOIN items ON scratch.x = items.key" with
  | exception Engine.Instance.Session_error _ -> ()
  | _ ->
    (* acceptable alternative: it errors deeper; what must not happen is a
       wrong answer — fail if it returned rows *)
    Alcotest.fail "local x distributed join should error"

let test_cte_over_distributed_table () =
  let _, _, s = make () in
  setup_items s;
  load_items s;
  (* the CTE groups by the distribution column, so the whole desugared
     query pushes down *)
  check_int s "cte pushdown" 40
    "WITH per_key AS (SELECT key, count(*) AS c FROM items GROUP BY key)      SELECT count(*) FROM per_key";
  check_int s "cte with filter" 8
    "WITH busy AS (SELECT key FROM items WHERE qty = 2) SELECT count(*) FROM busy"

let test_hybrid_local_reference_join () =
  (* the "hybrid data model" of §7: small local tables joined with
     reference tables work on the coordinator *)
  let _, _, s = make () in
  ignore (exec s "CREATE TABLE dims (id bigint, label text)");
  ignore (exec s "SELECT create_reference_table('dims')");
  ignore (exec s "INSERT INTO dims VALUES (1, 'one'), (2, 'two')");
  ignore (exec s "CREATE TABLE local_notes (dim bigint, note text)");
  ignore (exec s "INSERT INTO local_notes VALUES (1, 'a'), (1, 'b'), (2, 'c')");
  check_int s "local x reference join" 3
    "SELECT count(*) FROM local_notes JOIN dims ON local_notes.dim = dims.id"

(* --- reference tables --- *)

let test_reference_table_replication () =
  let cluster, citus, s = make () in
  ignore (exec s "CREATE TABLE dims (id bigint, label text)");
  ignore (exec s "SELECT create_reference_table('dims')");
  ignore (exec s "INSERT INTO dims VALUES (1, 'one')");
  (* each node (coordinator + workers) has the row in its replica shard *)
  let meta = citus.Citus.Api.metadata in
  let shard = List.hd (Citus.Metadata.shards_of meta "dims") in
  List.iter
    (fun (node : Cluster.Topology.node) ->
      let ws = Engine.Instance.connect node.instance in
      Alcotest.(check int)
        (Printf.sprintf "replica on %s" node.node_name)
        1
        (one_int ws
           (Printf.sprintf "SELECT count(*) FROM %s"
              (Citus.Metadata.shard_name shard))))
    (Cluster.Topology.all_nodes cluster);
  (* update goes everywhere *)
  ignore (exec s "UPDATE dims SET label = 'uno' WHERE id = 1");
  List.iter
    (fun (node : Cluster.Topology.node) ->
      let ws = Engine.Instance.connect node.instance in
      match
        (Engine.Instance.exec ws
           (Printf.sprintf "SELECT label FROM %s"
              (Citus.Metadata.shard_name shard)))
          .Engine.Instance.rows
      with
      | [ [| Datum.Text "uno" |] ] -> ()
      | _ -> Alcotest.fail "replica not updated")
    (Cluster.Topology.all_nodes cluster)

let test_reference_read_is_local () =
  let cluster, _, s = make () in
  ignore (exec s "CREATE TABLE dims (id bigint, label text)");
  ignore (exec s "SELECT create_reference_table('dims')");
  ignore (exec s "INSERT INTO dims VALUES (1, 'one')");
  let before = Cluster.Topology.net_snapshot cluster in
  check_int s "read" 1 "SELECT count(*) FROM dims";
  let after = Cluster.Topology.net_snapshot cluster in
  let d = Cluster.Topology.net_diff ~after ~before in
  (* served by the coordinator's own replica: only the local "connection"
     round trip, no worker traffic; allow <= 2 for the local hop *)
  Alcotest.(check bool) "few round trips" true
    (d.Cluster.Topology.round_trips <= 2)

let test_columnar_distributed_table () =
  let cluster, citus, s = make () in
  ignore (exec s "CREATE TABLE facts (k bigint, v bigint) USING COLUMNAR");
  ignore (exec s "SELECT create_distributed_table('facts', 'k')");
  (* the shards must be columnar on the workers *)
  let meta = citus.Citus.Api.metadata in
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      let node =
        Cluster.Topology.find_node cluster
          (Citus.Metadata.placement meta sh.Citus.Metadata.shard_id)
      in
      match
        (Engine.Catalog.find_table
           (Engine.Instance.catalog node.Cluster.Topology.instance)
           (Citus.Metadata.shard_name sh))
          .Engine.Catalog.store
      with
      | Engine.Catalog.Columnar_store _ -> ()
      | Engine.Catalog.Heap_store _ -> Alcotest.fail "shard should be columnar")
    (Citus.Metadata.shards_of meta "facts");
  ignore (exec s "BEGIN");
  for i = 1 to 50 do
    ignore (exec s (Printf.sprintf "INSERT INTO facts (k, v) VALUES (%d, %d)" i i))
  done;
  ignore (exec s "COMMIT");
  check_int s "pushdown over columnar shards" 1275 "SELECT sum(v) FROM facts";
  (* append-only: distributed UPDATE must surface the engine error *)
  match exec s "UPDATE facts SET v = 0 WHERE k = 1" with
  | exception Engine.Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "columnar update should fail"

let test_reference_write_uses_2pc () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE dims (id bigint, v bigint)");
  ignore (exec s "SELECT create_reference_table('dims')");
  ignore (exec s "INSERT INTO dims VALUES (1, 0)");
  (* a reference write touches every replica: commit is a multi-node 2PC *)
  let st = Citus.Api.coordinator_state citus in
  ignore st;
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE dims SET v = 42 WHERE id = 1");
  (* while open: replicas hold uncommitted versions *)
  let s2 = Citus.Api.connect citus in
  check_int s2 "uncommitted invisible" 0 "SELECT count(*) FROM dims WHERE v = 42";
  ignore (exec s "COMMIT");
  check_int s2 "visible after 2pc" 1 "SELECT count(*) FROM dims WHERE v = 42";
  (* and an abort leaves every replica unchanged *)
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE dims SET v = 99 WHERE id = 1");
  ignore (exec s "ROLLBACK");
  check_int s2 "abort applied everywhere" 0
    "SELECT count(*) FROM dims WHERE v = 99"

let test_distributed_vacuum () =
  let cluster, citus, s = make () in
  setup_items s;
  load_items s;
  ignore (exec s "DELETE FROM items WHERE key <= 30");
  let r = exec s "VACUUM items" in
  Alcotest.(check int) "reclaimed across shards" 30 r.Engine.Instance.affected;
  (* dead tuples gone on the workers *)
  let meta = citus.Citus.Api.metadata in
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      let node =
        Cluster.Topology.find_node cluster
          (Citus.Metadata.placement meta sh.Citus.Metadata.shard_id)
      in
      match
        (Engine.Catalog.find_table
           (Engine.Instance.catalog node.Cluster.Topology.instance)
           (Citus.Metadata.shard_name sh))
          .Engine.Catalog.store
      with
      | Engine.Catalog.Heap_store h ->
        Alcotest.(check int) "no dead tuples" 0 (Storage.Heap.dead_estimate h)
      | Engine.Catalog.Columnar_store _ -> ())
    (Citus.Metadata.shards_of meta "items");
  check_int s "survivors" 10 "SELECT count(*) FROM items"

(* --- transactions --- *)

let test_single_node_txn_commit_abort () =
  let _, _, s = make () in
  setup_items s;
  load_items s;
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE items SET qty = 1000 WHERE key = 3");
  ignore (exec s "ROLLBACK");
  Alcotest.(check bool) "rolled back" true
    (one_int s "SELECT qty FROM items WHERE key = 3" <> 1000);
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE items SET qty = 1000 WHERE key = 3");
  ignore (exec s "COMMIT");
  check_int s "committed" 1000 "SELECT qty FROM items WHERE key = 3"

(* find two keys on different nodes *)
let two_keys_on_different_nodes citus table =
  let meta = citus.Citus.Api.metadata in
  let node_of k =
    Citus.Metadata.placement meta
      (Citus.Metadata.shard_for_value meta ~table (Datum.Int k))
        .Citus.Metadata.shard_id
  in
  let k1 = 1 in
  let rec find k =
    if k > 1000 then Alcotest.fail "no second node?"
    else if node_of k <> node_of k1 then k
    else find (k + 1)
  in
  (k1, find 2)

let test_2pc_commit_across_nodes () =
  let _, citus, s = make () in
  setup_items s;
  load_items s;
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  ignore (exec s "BEGIN");
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 777 WHERE key = %d" k1));
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 777 WHERE key = %d" k2));
  ignore (exec s "COMMIT");
  check_int s "k1" 777 (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k1);
  check_int s "k2" 777 (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2);
  (* commit records are garbage-collected by the maintenance daemon *)
  Citus.Api.maintenance citus;
  Alcotest.(check int) "no leftover records" 0
    (Citus.Twopc.commit_record_count (Citus.Api.coordinator_state citus))

let test_2pc_abort_across_nodes () =
  let _, citus, s = make () in
  setup_items s;
  load_items s;
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  ignore (exec s "BEGIN");
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 888 WHERE key = %d" k1));
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 888 WHERE key = %d" k2));
  ignore (exec s "ROLLBACK");
  Alcotest.(check bool) "k1 unchanged" true
    (one_int s (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k1) <> 888);
  Alcotest.(check bool) "k2 unchanged" true
    (one_int s (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2) <> 888)

let test_2pc_recovery_after_partition () =
  (* break the window between PREPARE and COMMIT PREPARED on one node:
     the coordinator commits (records durable), the worker keeps a
     prepared transaction, and the recovery daemon finishes the job *)
  let _, citus, s = make () in
  setup_items s;
  load_items s;
  let st = Citus.Api.coordinator_state citus in
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  let meta = citus.Citus.Api.metadata in
  let node_of k =
    Citus.Metadata.placement meta
      (Citus.Metadata.shard_for_value meta ~table:"items" (Datum.Int k))
        .Citus.Metadata.shard_id
  in
  let lost_node = node_of k2 in
  Citus.State.inject_failure st ~node:lost_node ~matching:"COMMIT PREPARED";
  ignore (exec s "BEGIN");
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 555 WHERE key = %d" k1));
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 555 WHERE key = %d" k2));
  (* COMMIT succeeds from the client's point of view: prepare worked and
     the commit record is durable; only the final COMMIT PREPARED to one
     node is lost *)
  ignore (exec s "COMMIT");
  check_int s "k1 committed" 555
    (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k1);
  (* k2's worker still holds the prepared transaction: the row is locked
     and the update invisible *)
  Alcotest.(check bool) "k2 still pending" true
    (one_int s (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2) <> 555);
  let lost_mgr =
    Engine.Instance.txn_manager
      (Cluster.Topology.find_node citus.Citus.Api.cluster lost_node)
        .Cluster.Topology.instance
  in
  Alcotest.(check int) "one prepared txn pending" 1
    (List.length (Txn.Manager.prepared_transactions lost_mgr));
  Alcotest.(check bool) "commit record retained" true
    (Citus.Twopc.commit_record_count st > 0);
  (* the failure heals; the recovery daemon compares prepared transactions
     against the commit records and commits the orphan (§3.7.2) *)
  Citus.State.clear_failures st;
  let committed, rolled_back = Citus.Twopc.recover st in
  Alcotest.(check int) "recovery committed it" 1 committed;
  Alcotest.(check int) "nothing rolled back" 0 rolled_back;
  check_int s "k2 now committed" 555
    (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2);
  Citus.Api.maintenance citus;
  Alcotest.(check int) "records garbage-collected" 0
    (Citus.Twopc.commit_record_count st)

let test_2pc_recovery_rolls_back_orphans () =
  (* a prepared transaction whose coordinator aborted (no commit record)
     must be rolled back by recovery *)
  let _, citus, s = make () in
  setup_items s;
  load_items s;
  let st = Citus.Api.coordinator_state citus in
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  let meta = citus.Citus.Api.metadata in
  let node_of k =
    Citus.Metadata.placement meta
      (Citus.Metadata.shard_for_value meta ~table:"items" (Datum.Int k))
        .Citus.Metadata.shard_id
  in
  (* connections are visited newest-first at commit, so k2's node prepares
     first; failing k1's PREPARE leaves k2 prepared, and its ROLLBACK
     PREPARED cleanup is lost too *)
  Citus.State.inject_failure st ~node:(node_of k1) ~matching:"PREPARE TRANSACTION";
  Citus.State.inject_failure st ~node:(node_of k2) ~matching:"ROLLBACK PREPARED";
  ignore (exec s "BEGIN");
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 666 WHERE key = %d" k1));
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 666 WHERE key = %d" k2));
  (match exec s "COMMIT" with
   | exception _ -> ()
   | _ -> ());
  ignore (exec s "ROLLBACK");
  Citus.State.clear_failures st;
  let mgr2 =
    Engine.Instance.txn_manager
      (Cluster.Topology.find_node citus.Citus.Api.cluster (node_of k2))
        .Cluster.Topology.instance
  in
  Alcotest.(check int) "orphaned prepared txn" 1
    (List.length (Txn.Manager.prepared_transactions mgr2));
  let committed, rolled_back = Citus.Twopc.recover st in
  Alcotest.(check int) "nothing committed" 0 committed;
  Alcotest.(check int) "orphan rolled back" 1 rolled_back;
  Alcotest.(check bool) "k2 unchanged" true
    (one_int s (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2) <> 666)

let test_2pc_prepare_failure_aborts_everywhere () =
  let _, citus, s = make () in
  setup_items s;
  load_items s;
  let st = Citus.Api.coordinator_state citus in
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  let meta = citus.Citus.Api.metadata in
  let node_of k =
    Citus.Metadata.placement meta
      (Citus.Metadata.shard_for_value meta ~table:"items" (Datum.Int k))
        .Citus.Metadata.shard_id
  in
  ignore (exec s "BEGIN");
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 111 WHERE key = %d" k1));
  ignore (exec s (Printf.sprintf "UPDATE items SET qty = 111 WHERE key = %d" k2));
  (* sever one participant before commit: PREPARE on it fails, the whole
     distributed transaction must abort *)
  Citus.State.partition_node st (node_of k2);
  (match exec s "COMMIT" with
   | exception _ -> ()
   | _r ->
     (* commit errored internally; session state must be clean *)
     ());
  Citus.State.heal_node st (node_of k2);
  ignore (exec s "ROLLBACK");
  Alcotest.(check bool) "k1 not committed" true
    (one_int s (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k1) <> 111);
  Alcotest.(check bool) "k2 not committed" true
    (one_int s (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2) <> 111);
  (* recovery cleans any leftover prepared transactions *)
  Citus.Api.maintenance citus;
  Alcotest.(check int) "no stale prepared" 0
    (List.length
       (Txn.Manager.prepared_transactions
          (Engine.Instance.txn_manager
             (Cluster.Topology.find_node citus.Citus.Api.cluster (node_of k1))
               .Cluster.Topology.instance)))

let test_distributed_deadlock_detection () =
  let _, citus, s1 = make () in
  setup_items s1;
  load_items s1;
  let s2 = Citus.Api.connect citus in
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  ignore (exec s1 "BEGIN");
  ignore (exec s2 "BEGIN");
  ignore (exec s1 (Printf.sprintf "UPDATE items SET qty = 1 WHERE key = %d" k1));
  ignore (exec s2 (Printf.sprintf "UPDATE items SET qty = 2 WHERE key = %d" k2));
  (* now cross: each blocks on the other, on different nodes, so neither
     node sees a local cycle *)
  (match exec s1 (Printf.sprintf "UPDATE items SET qty = 1 WHERE key = %d" k2) with
   | exception Engine.Executor.Would_block _ -> ()
   | _ -> Alcotest.fail "s1 should block");
  (match exec s2 (Printf.sprintf "UPDATE items SET qty = 2 WHERE key = %d" k1) with
   | exception Engine.Executor.Would_block _ -> ()
   | _ -> Alcotest.fail "s2 should block");
  (* no local deadlock on any single node *)
  List.iter
    (fun (node : Cluster.Topology.node) ->
      Alcotest.(check bool) "no local cycle" true
        (Txn.Lock.detect_deadlock
           (Txn.Manager.locks (Engine.Instance.txn_manager node.instance))
         = None))
    (Cluster.Topology.all_nodes citus.Citus.Api.cluster);
  (* the distributed detector finds it and cancels the youngest *)
  let st = Citus.Api.coordinator_state citus in
  (match Citus.Deadlock.detect_and_cancel st with
   | Some _victim -> ()
   | None -> Alcotest.fail "distributed deadlock not detected");
  (* the survivor can finish after retrying *)
  ignore (exec s1 (Printf.sprintf "UPDATE items SET qty = 1 WHERE key = %d" k2));
  ignore (exec s1 "COMMIT");
  (* the victim session observes its abort *)
  match exec s2 "SELECT 1" with
  | exception Engine.Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "victim should observe abort"

let test_exec_with_retries_breaks_deadlock () =
  (* two sessions in a distributed deadlock; the survivor's retry loop
     succeeds because each retry runs the maintenance daemon, which cancels
     the youngest transaction *)
  let _, citus, s1 = make () in
  setup_items s1;
  load_items s1;
  let s2 = Citus.Api.connect citus in
  let k1, k2 = two_keys_on_different_nodes citus "items" in
  ignore (exec s1 "BEGIN");
  ignore (exec s2 "BEGIN");
  ignore (exec s1 (Printf.sprintf "UPDATE items SET qty = 1 WHERE key = %d" k1));
  ignore (exec s2 (Printf.sprintf "UPDATE items SET qty = 2 WHERE key = %d" k2));
  (match exec s2 (Printf.sprintf "UPDATE items SET qty = 2 WHERE key = %d" k1) with
   | exception Engine.Executor.Would_block _ -> ()
   | _ -> Alcotest.fail "s2 should block");
  (* s1 completes the cycle but retries; maintenance cancels s2 (younger) *)
  ignore
    (Citus.Api.exec_with_retries citus s1
       (Printf.sprintf "UPDATE items SET qty = 1 WHERE key = %d" k2));
  ignore (exec s1 "COMMIT");
  check_int s1 "survivor committed" 1
    (Printf.sprintf "SELECT qty FROM items WHERE key = %d" k2);
  match exec s2 "SELECT 1" with
  | exception Engine.Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "victim should observe abort"

(* --- COPY --- *)

let test_copy_routing () =
  let _, _, s = make () in
  setup_items s;
  let lines = List.init 30 (fun i -> Printf.sprintf "%d\tc%d\t%d" (i + 1) i (i mod 3)) in
  let n = Engine.Instance.copy_in s ~table:"items" ~columns:None lines in
  Alcotest.(check int) "copied" 30 n;
  check_int s "all rows" 30 "SELECT count(*) FROM items";
  check_int s "routed correctly" 1 "SELECT count(*) FROM items WHERE key = 17"

let test_copy_reference () =
  let cluster, citus, s = make () in
  ignore (exec s "CREATE TABLE dims (id bigint, label text)");
  ignore (exec s "SELECT create_reference_table('dims')");
  let n = Engine.Instance.copy_in s ~table:"dims" ~columns:None [ "1\ta"; "2\tb" ] in
  Alcotest.(check int) "copied" 2 n;
  let meta = citus.Citus.Api.metadata in
  let shard = List.hd (Citus.Metadata.shards_of meta "dims") in
  List.iter
    (fun (node : Cluster.Topology.node) ->
      let ws = Engine.Instance.connect node.instance in
      Alcotest.(check int) "replica rows" 2
        (one_int ws
           (Printf.sprintf "SELECT count(*) FROM %s" (Citus.Metadata.shard_name shard))))
    (Cluster.Topology.all_nodes cluster)

(* --- INSERT..SELECT --- *)

let test_insert_select_colocated () =
  let _, _, s = make () in
  setup_items s;
  ignore (exec s "CREATE TABLE rollup (key bigint, total bigint)");
  ignore (exec s "SELECT create_distributed_table('rollup', 'key', 'items')");
  load_items s;
  let r =
    exec s
      "INSERT INTO rollup (key, total) SELECT key, sum(qty) FROM items GROUP BY key"
  in
  Alcotest.(check int) "40 rollup rows" 40 r.Engine.Instance.affected;
  check_int s "rollup total" 40 "SELECT count(*) FROM rollup"

let test_insert_select_repartition () =
  let _, _, s = make () in
  setup_items s;
  ignore (exec s "CREATE TABLE by_qty (qty bigint, key bigint)");
  ignore (exec s "SELECT create_distributed_table('by_qty', 'qty')");
  load_items s;
  (* source distributed by key, dest by qty: needs re-partitioning *)
  let r = exec s "INSERT INTO by_qty (qty, key) SELECT qty, key FROM items" in
  Alcotest.(check int) "rows moved" 40 r.Engine.Instance.affected;
  check_int s "count" 40 "SELECT count(*) FROM by_qty";
  check_int s "bucket" 8 "SELECT count(*) FROM by_qty WHERE qty = 2"

let test_insert_select_pull () =
  let _, _, s = make () in
  setup_items s;
  ignore (exec s "CREATE TABLE summary (qty bigint, cnt bigint)");
  ignore (exec s "SELECT create_distributed_table('summary', 'qty')");
  load_items s;
  (* group by a non-distribution column: needs the coordinator merge *)
  let r =
    exec s "INSERT INTO summary (qty, cnt) SELECT qty, count(*) FROM items GROUP BY qty"
  in
  Alcotest.(check int) "5 buckets" 5 r.Engine.Instance.affected;
  check_int s "bucket count" 8 "SELECT cnt FROM summary WHERE qty = 2"

let test_conversion_errors () =
  let _, _, s = make () in
  setup_items s;
  (* converting twice is an error *)
  (match exec s "SELECT create_distributed_table('items', 'key')" with
   | exception Engine.Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "double conversion should fail");
  (* and so is referencing an already-distributed table *)
  (match exec s "SELECT create_reference_table('items')" with
   | exception Engine.Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "reference of distributed should fail");
  (* converting a missing table *)
  match exec s "SELECT create_distributed_table('ghost', 'k')" with
  | exception Engine.Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "missing table should fail"

let test_copy_in_transaction_aborts_cleanly () =
  let _, _, s = make () in
  setup_items s;
  ignore (exec s "BEGIN");
  let n =
    Engine.Instance.copy_in s ~table:"items" ~columns:None
      [ "501	a	1"; "502	b	2" ]
  in
  Alcotest.(check int) "copied in txn" 2 n;
  check_int s "visible to self" 2 "SELECT count(*) FROM items WHERE key > 500";
  ignore (exec s "ROLLBACK");
  check_int s "rolled back across shards" 0
    "SELECT count(*) FROM items WHERE key > 500"

let test_insert_select_into_reference () =
  let cluster, citus, s = make () in
  setup_items s;
  load_items ~n:10 s;
  ignore (exec s "CREATE TABLE qty_dims (qty bigint, label text)");
  ignore (exec s "SELECT create_reference_table('qty_dims')");
  (* pull the distinct qty values out of the distributed table into the
     reference table: every replica must receive them *)
  let r =
    exec s
      "INSERT INTO qty_dims (qty, label) SELECT qty, 'bucket' FROM items GROUP BY qty"
  in
  Alcotest.(check bool) "rows inserted" true (r.Engine.Instance.affected > 0);
  let meta = citus.Citus.Api.metadata in
  let shard = List.hd (Citus.Metadata.shards_of meta "qty_dims") in
  List.iter
    (fun (node : Cluster.Topology.node) ->
      let ws = Engine.Instance.connect node.instance in
      Alcotest.(check int) "replica rows" r.Engine.Instance.affected
        (one_int ws
           (Printf.sprintf "SELECT count(*) FROM %s"
              (Citus.Metadata.shard_name shard))))
    (Cluster.Topology.all_nodes cluster)

let test_exec_params_distributed () =
  let _, _, s = make () in
  setup_items s;
  load_items ~n:5 s;
  let r =
    Engine.Instance.exec_params s "SELECT val FROM items WHERE key = $1"
      [ Datum.Int 3 ]
  in
  (match r.Engine.Instance.rows with
   | [ [| Datum.Text "v3" |] ] -> ()
   | _ -> Alcotest.fail "param routing failed");
  match
    Engine.Instance.exec_params s "SELECT val FROM items WHERE key = $2"
      [ Datum.Int 3 ]
  with
  | exception Engine.Instance.Session_error m ->
    (* typed error naming the parameter, not a bare Invalid_argument *)
    Alcotest.(check string) "bind error" "no value for parameter $2" m
  | _ -> Alcotest.fail "missing param should fail"

(* --- DDL propagation --- *)

let test_ddl_propagation () =
  let cluster, citus, s = make () in
  setup_items s;
  load_items s;
  ignore (exec s "CREATE INDEX items_qty ON items USING BTREE (qty)");
  (* every shard on every worker has the index *)
  let meta = citus.Citus.Api.metadata in
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      let node =
        Cluster.Topology.find_node cluster (Citus.Metadata.placement meta sh.shard_id)
      in
      let catalog = Engine.Instance.catalog node.instance in
      let tbl = Engine.Catalog.find_table catalog (Citus.Metadata.shard_name sh) in
      Alcotest.(check bool) "shard index exists" true
        (List.exists
           (fun (i : Engine.Catalog.index) ->
             String.length i.idx_name >= 9
             && String.sub i.idx_name 0 9 = "items_qty")
           tbl.Engine.Catalog.indexes))
    (Citus.Metadata.shards_of meta "items");
  (* ALTER propagates *)
  ignore (exec s "ALTER TABLE items ADD COLUMN note text DEFAULT 'x'");
  check_int s "new column readable" 40 "SELECT count(*) FROM items WHERE note = 'x'";
  (* TRUNCATE propagates *)
  ignore (exec s "TRUNCATE items");
  check_int s "truncated" 0 "SELECT count(*) FROM items"

let test_drop_distributed_table () =
  let cluster, citus, s = make () in
  setup_items s;
  load_items s;
  let meta = citus.Citus.Api.metadata in
  let shard_names =
    List.map
      (fun (sh : Citus.Metadata.shard) ->
        (Citus.Metadata.placement meta sh.Citus.Metadata.shard_id,
         Citus.Metadata.shard_name sh))
      (Citus.Metadata.shards_of meta "items")
  in
  ignore (exec s "DROP TABLE items");
  Alcotest.(check bool) "metadata gone" false
    (Citus.Metadata.is_citus_table meta "items");
  (* physical shards removed from the workers *)
  List.iter
    (fun (node, shard) ->
      let cat =
        Engine.Instance.catalog
          (Cluster.Topology.find_node cluster node).Cluster.Topology.instance
      in
      Alcotest.(check bool) (shard ^ " dropped") true
        (Engine.Catalog.find_table_opt cat shard = None))
    shard_names;
  (* the name is reusable *)
  ignore (exec s "CREATE TABLE items (key bigint, v text)");
  ignore (exec s "SELECT create_distributed_table('items', 'key')");
  check_int s "fresh table" 0 "SELECT count(*) FROM items"

let test_convert_table_with_existing_rows () =
  let _, _, s = make () in
  ignore (exec s "CREATE TABLE pre (k bigint PRIMARY KEY, v text)");
  for i = 1 to 25 do
    ignore (exec s (Printf.sprintf "INSERT INTO pre VALUES (%d, 'v%d')" i i))
  done;
  (* conversion must move the existing rows into the new shards *)
  ignore (exec s "SELECT create_distributed_table('pre', 'k')");
  check_int s "all rows moved" 25 "SELECT count(*) FROM pre";
  check_int s "routed lookup" 1 "SELECT count(*) FROM pre WHERE k = 13";
  (* the coordinator's local copy is empty (data lives in shards) *)
  let inst = Engine.Instance.session_instance s in
  (match (Engine.Catalog.find_table (Engine.Instance.catalog inst) "pre").Engine.Catalog.store with
   | Engine.Catalog.Heap_store h ->
     Alcotest.(check int) "local copy emptied" 0 (Storage.Heap.live_estimate h)
   | _ -> Alcotest.fail "heap expected")

let test_self_insert_select () =
  let _, _, s = make () in
  setup_items s;
  load_items ~n:10 s;
  (* self-referential INSERT..SELECT: doubles the rows per shard, shifted
     out of the original key space *)
  let r =
    exec s
      "INSERT INTO items (key, val, qty) SELECT key + 1000, val, qty FROM items"
  in
  Alcotest.(check int) "duplicated" 10 r.Engine.Instance.affected;
  check_int s "total" 20 "SELECT count(*) FROM items";
  check_int s "shifted copy present" 1 "SELECT count(*) FROM items WHERE key = 1003"

(* --- multi-coordinator (MX) --- *)

let test_metadata_sync_worker_as_coordinator () =
  let cluster, citus, s = make () in
  setup_items s;
  load_items s;
  Citus.Api.enable_metadata_sync citus;
  let w1 = Cluster.Topology.find_node cluster "worker1" in
  let ws = Citus.Api.connect_via citus w1 in
  check_int ws "count via worker" 40 "SELECT count(*) FROM items";
  ignore (exec ws "INSERT INTO items (key, val, qty) VALUES (1000, 'via-worker', 1)");
  (* visible from the coordinator too *)
  check_int s "visible from coordinator" 1
    "SELECT count(*) FROM items WHERE key = 1000"

let test_mx_ddl_from_worker_propagates () =
  (* shared metadata means a worker-as-coordinator can run DDL too; every
     shard still gets the index *)
  let cluster, citus, s = make () in
  setup_items s;
  Citus.Api.enable_metadata_sync citus;
  let w1 = Cluster.Topology.find_node cluster "worker1" in
  let ws = Citus.Api.connect_via citus w1 in
  ignore (exec ws "CREATE INDEX items_qty2 ON items USING BTREE (qty)");
  let meta = citus.Citus.Api.metadata in
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      let node =
        Cluster.Topology.find_node cluster
          (Citus.Metadata.placement meta sh.Citus.Metadata.shard_id)
      in
      let tbl =
        Engine.Catalog.find_table
          (Engine.Instance.catalog node.Cluster.Topology.instance)
          (Citus.Metadata.shard_name sh)
      in
      Alcotest.(check bool) "index on every shard" true
        (List.exists
           (fun (i : Engine.Catalog.index) ->
             String.length i.idx_name >= 10
             && String.sub i.idx_name 0 10 = "items_qty2")
           tbl.Engine.Catalog.indexes))
    (Citus.Metadata.shards_of meta "items")

let test_mx_reference_read_local_to_worker () =
  let cluster, citus, _s = make () in
  let s0 = Citus.Api.connect citus in
  ignore (exec s0 "CREATE TABLE dims (id bigint, v text)");
  ignore (exec s0 "SELECT create_reference_table('dims')");
  ignore (exec s0 "INSERT INTO dims VALUES (1, 'x')");
  Citus.Api.enable_metadata_sync citus;
  let w2 = Cluster.Topology.find_node cluster "worker2" in
  let ws = Citus.Api.connect_via citus w2 in
  let before = Cluster.Topology.net_snapshot cluster in
  check_int ws "read via worker" 1 "SELECT count(*) FROM dims";
  let d =
    Cluster.Topology.net_diff ~after:(Cluster.Topology.net_snapshot cluster)
      ~before
  in
  (* served from worker2's own replica: no cross-node traffic *)
  Alcotest.(check int) "no cross-node round trips" 0
    d.Cluster.Topology.cross_round_trips

let test_procedure_delegation () =
  let cluster, citus, s = make () in
  setup_items s;
  load_items s;
  Citus.Api.enable_metadata_sync citus;
  (* register the procedure on every node, as an application would *)
  List.iter
    (fun (node : Cluster.Topology.node) ->
      Engine.Instance.register_udf node.instance "bump_qty"
        (fun session args ->
          match args with
          | [ Datum.Int key; Datum.Int delta ] ->
            ignore
              (Engine.Instance.exec session
                 (Printf.sprintf "UPDATE items SET qty = qty + %d WHERE key = %d"
                    delta key));
            Datum.Null
          | _ -> failwith "bump_qty(key, delta)"))
    (Cluster.Topology.all_nodes cluster);
  ignore (exec s "SELECT create_distributed_function('bump_qty', 1, 'items')");
  let before = one_int s "SELECT qty FROM items WHERE key = 5" in
  ignore (exec s "CALL bump_qty(5, 7)");
  check_int s "delegated call applied" (before + 7)
    "SELECT qty FROM items WHERE key = 5";
  ignore citus

let () =
  Alcotest.run "citus"
    [
      ( "metadata",
        [
          Alcotest.test_case "shards + placements" `Quick test_metadata_shards;
          Alcotest.test_case "colocation" `Quick test_colocation;
          Alcotest.test_case "hash determinism" `Quick
            test_shard_for_value_deterministic;
        ] );
      ( "routing",
        [
          Alcotest.test_case "distributed crud" `Quick test_distributed_crud;
          Alcotest.test_case "data on workers" `Quick test_data_on_workers;
          Alcotest.test_case "planner tiers" `Quick test_planner_tiers;
          Alcotest.test_case "multi-row insert" `Quick test_multi_row_insert_split;
          Alcotest.test_case "insert needs dist col" `Quick
            test_insert_requires_dist_column;
          Alcotest.test_case "shard pruning" `Quick test_shard_pruning_in_list;
          Alcotest.test_case "local tables coexist" `Quick
            test_local_tables_coexist;
          Alcotest.test_case "cte over distributed" `Quick
            test_cte_over_distributed_table;
          Alcotest.test_case "hybrid local x reference" `Quick
            test_hybrid_local_reference_join;
          Alcotest.test_case "params distributed" `Quick
            test_exec_params_distributed;
        ] );
      ( "pushdown",
        [
          Alcotest.test_case "aggregates" `Quick test_pushdown_aggregates;
          Alcotest.test_case "group by" `Quick test_pushdown_group_by;
          Alcotest.test_case "order/limit" `Quick test_pushdown_order_limit;
          Alcotest.test_case "colocated join" `Quick test_pushdown_colocated_join;
          Alcotest.test_case "reference join" `Quick test_pushdown_reference_join;
          Alcotest.test_case "non-colocated rejected" `Quick
            test_non_colocated_join_rejected;
          Alcotest.test_case "venicedb subquery" `Quick
            test_venicedb_nested_subquery_pushdown;
          Alcotest.test_case "bad subquery rejected" `Quick
            test_subquery_group_without_dist_rejected;
          Alcotest.test_case "count distinct" `Quick
            test_count_distinct_with_dist_group;
        ] );
      ( "reference",
        [
          Alcotest.test_case "replication" `Quick test_reference_table_replication;
          Alcotest.test_case "local read" `Quick test_reference_read_is_local;
          Alcotest.test_case "write uses 2pc" `Quick test_reference_write_uses_2pc;
        ] );
      ( "storage_variants",
        [
          Alcotest.test_case "columnar distributed" `Quick
            test_columnar_distributed_table;
          Alcotest.test_case "distributed vacuum" `Quick test_distributed_vacuum;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "single node txn" `Quick
            test_single_node_txn_commit_abort;
          Alcotest.test_case "2pc commit" `Quick test_2pc_commit_across_nodes;
          Alcotest.test_case "2pc abort" `Quick test_2pc_abort_across_nodes;
          Alcotest.test_case "2pc partition recovery" `Quick
            test_2pc_recovery_after_partition;
          Alcotest.test_case "2pc orphan rollback" `Quick
            test_2pc_recovery_rolls_back_orphans;
          Alcotest.test_case "prepare failure aborts" `Quick
            test_2pc_prepare_failure_aborts_everywhere;
          Alcotest.test_case "distributed deadlock" `Quick
            test_distributed_deadlock_detection;
          Alcotest.test_case "retry breaks deadlock" `Quick
            test_exec_with_retries_breaks_deadlock;
        ] );
      ( "copy",
        [
          Alcotest.test_case "routing" `Quick test_copy_routing;
          Alcotest.test_case "reference" `Quick test_copy_reference;
          Alcotest.test_case "copy in txn aborts" `Quick
            test_copy_in_transaction_aborts_cleanly;
        ] );
      ( "insert_select",
        [
          Alcotest.test_case "colocated" `Quick test_insert_select_colocated;
          Alcotest.test_case "repartition" `Quick test_insert_select_repartition;
          Alcotest.test_case "pull" `Quick test_insert_select_pull;
          Alcotest.test_case "self insert..select" `Quick test_self_insert_select;
          Alcotest.test_case "into reference" `Quick
            test_insert_select_into_reference;
        ] );
      ( "ddl",
        [
          Alcotest.test_case "propagation" `Quick test_ddl_propagation;
          Alcotest.test_case "drop distributed" `Quick test_drop_distributed_table;
          Alcotest.test_case "convert with rows" `Quick
            test_convert_table_with_existing_rows;
          Alcotest.test_case "conversion errors" `Quick test_conversion_errors;
        ] );
      ( "mx",
        [
          Alcotest.test_case "worker as coordinator" `Quick
            test_metadata_sync_worker_as_coordinator;
          Alcotest.test_case "procedure delegation" `Quick
            test_procedure_delegation;
          Alcotest.test_case "ddl from worker" `Quick
            test_mx_ddl_from_worker_propagates;
          Alcotest.test_case "reference read local to worker" `Quick
            test_mx_reference_read_local_to_worker;
        ] );
    ]
