(* Citus MX chaos (§3.2.1): with the catalog replicated to every worker,
   any node coordinates distributed transactions in its own gid
   namespace. The seeded storm runs pgbench-style balance transfers
   round-robined across ALL coordinating nodes while nodes — including
   the bootstrap coordinator and the very workers originating
   transactions — crash, partition, and lose messages mid-fan-out.

   Invariants after quiescence, each tagged with the seed for replay:

   - atomicity: transfers conserve the total balance no matter which
     coordinator ran them or died running them;
   - zero orphaned prepared transactions on any node, across every gid
     namespace (each gid resolves against its origin's commit records);
   - commit records drained on every coordinating node;
   - no torn snapshot reads: every mid-storm sum that returned at all
     returned the conserved total (citus.consistency = snapshot);
   - catalog replicas in lockstep: same version, same placement map on
     every metadata-synced node;
   - bit-identical same-seed replay of the whole observable surface. *)

let n_keys = 24
let initial_balance = 100
let expected_total = n_keys * initial_balance
let n_txns = 40
let clock_step = 0.25

type outcome = Committed | Failed | Unknown

let outcome_name = function
  | Committed -> "committed"
  | Failed -> "failed"
  | Unknown -> "unknown"

let exec s sql = Engine.Instance.exec s sql

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | rows ->
    Alcotest.fail
      (Printf.sprintf "expected one int from %S, got %d rows" sql
         (List.length rows))

let fault_of cluster =
  match Cluster.Topology.fault cluster with
  | Some f -> f
  | None -> Alcotest.fail "cluster has no fault plan"

(* Build the MX cluster: install, load, then replicate the catalog so
   every worker coordinates. The consistency knob is set through a
   WORKER session after the sync — citus_set_config must propagate it
   to every installed node. *)
let make_cluster ~seed ~replication =
  let cluster =
    Cluster.Topology.create ~workers:3 ~fault_seed:seed ~sched_seed:seed ()
  in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  Citus.Api.set_replication_factor citus replication;
  let s = Citus.Api.connect citus in
  ignore
    (exec s "CREATE TABLE accounts (key bigint PRIMARY KEY, balance bigint)");
  ignore (exec s "SELECT create_distributed_table('accounts', 'key')");
  for k = 0 to n_keys - 1 do
    ignore
      (exec s
         (Printf.sprintf
            "INSERT INTO accounts (key, balance) VALUES (%d, %d)" k
            initial_balance))
  done;
  ignore (exec s "SELECT citus_enable_metadata_sync()");
  let w =
    Citus.Api.connect_via citus (List.hd cluster.Cluster.Topology.workers)
  in
  ignore (exec w "SELECT citus_set_config('consistency', 'snapshot')");
  List.iter
    (fun (st : Citus.State.t) ->
      Alcotest.(check string)
        (Printf.sprintf "consistency propagated to %s"
           st.Citus.State.local.Cluster.Topology.node_name)
        "snapshot"
        (Citus.State.consistency_to_string
           st.Citus.State.config.Citus.State.consistency))
    citus.Citus.Api.states;
  (cluster, citus)

let coordinating_nodes cluster = Cluster.Topology.data_nodes cluster

let node_of citus k =
  let meta = citus.Citus.Api.metadata in
  Citus.Metadata.placement meta
    (Citus.Metadata.shard_for_value meta ~table:"accounts" (Datum.Int k))
      .Citus.Metadata.shard_id

(* --- the workload: one session per coordinating node --- *)

let ensure_session citus node sref =
  if not (Engine.Instance.session_alive !sref) then
    sref := Citus.Api.connect_via citus node

let transfer citus node sref ~k1 ~k2 ~amount =
  ensure_session citus node sref;
  let s = !sref in
  match
    ignore (exec s "BEGIN");
    ignore
      (exec s
         (Printf.sprintf
            "UPDATE accounts SET balance = balance - %d WHERE key = %d" amount
            k1));
    ignore
      (exec s
         (Printf.sprintf
            "UPDATE accounts SET balance = balance + %d WHERE key = %d" amount
            k2))
  with
  | () -> (
    match exec s "COMMIT" with
    | _ -> Committed
    | exception _ ->
      (try ignore (exec s "ROLLBACK") with _ -> ());
      Unknown)
  | exception _ ->
    (try ignore (exec s "ROLLBACK") with _ -> ());
    Failed

(* --- the fault schedule: nobody is special --- *)

let schedule_faults cluster fault rng =
  let workers =
    List.map
      (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
      cluster.Cluster.Topology.workers
  in
  let horizon = float_of_int n_txns *. clock_step in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let nodes = "coordinator" :: workers in
  (* crashes with WAL-replay restarts — the bootstrap coordinator and
     transaction-originating workers are equally fair game *)
  for _ = 1 to 3 do
    let at = Random.State.float rng (horizon *. 0.8) in
    let down_for = 0.5 +. Random.State.float rng 2.0 in
    Sim.Fault.schedule_crash fault ~at ~down_for (pick nodes)
  done;
  (* asymmetric partitions between arbitrary node pairs: with many
     coordinators every link matters, not just coordinator<->worker *)
  for _ = 1 to 3 do
    let at = Random.State.float rng (horizon *. 0.8) in
    let heal_after = 0.5 +. Random.State.float rng 2.0 in
    let from_ = pick nodes in
    let to_ = pick (List.filter (fun n -> not (String.equal n from_)) nodes) in
    Sim.Fault.schedule_partition ~heal_after fault ~at ~from_ ~to_
  done;
  Sim.Fault.set_drop_rate fault
    ~request:(Random.State.float rng 0.03)
    ~reply:(Random.State.float rng 0.03);
  (* sometimes, a participant dies right between PREPARE and COMMIT
     PREPARED — whoever coordinates, recovery owns the cleanup *)
  if Random.State.bool rng then
    Sim.Fault.arm_crash_after fault ~node:(pick workers)
      ~matching:"PREPARE TRANSACTION"
      ~lose_reply:(Random.State.bool rng) ()

(* --- quiescence --- *)

let quiesce cluster citus =
  let fault = fault_of cluster in
  Sim.Fault.quiesce fault;
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Sim.Fault.crash_now fault n.Cluster.Topology.node_name;
      Sim.Fault.restart_now fault n.Cluster.Topology.node_name)
    (Cluster.Topology.all_nodes cluster);
  Sim.Clock.advance cluster.Cluster.Topology.clock 30.0;
  for _ = 1 to 3 do
    Citus.Api.maintenance citus
  done

let write_pass citus =
  let s = Citus.Api.connect citus in
  for k = 0 to n_keys - 1 do
    ignore
      (Citus.Api.exec_with_retries citus s
         (Printf.sprintf
            "UPDATE accounts SET balance = balance + 0 WHERE key = %d" k))
  done

(* --- invariants --- *)

let check_invariants ~seed cluster citus =
  let msg m = Printf.sprintf "[seed %d] %s" seed m in
  let s = Citus.Api.connect citus in
  Alcotest.(check int)
    (msg "total balance conserved")
    expected_total
    (one_int s "SELECT sum(balance) FROM accounts");
  (* zero orphaned prepared transactions, in every gid namespace *)
  List.iter
    (fun (n : Cluster.Topology.node) ->
      let mgr = Engine.Instance.txn_manager n.Cluster.Topology.instance in
      Alcotest.(check int)
        (msg
           (Printf.sprintf "no orphaned prepared transactions on %s"
              n.Cluster.Topology.node_name))
        0
        (List.length (Txn.Manager.prepared_transactions mgr)))
    (Cluster.Topology.all_nodes cluster);
  (* every coordinating node's commit records drained *)
  List.iter
    (fun (st : Citus.State.t) ->
      Alcotest.(check int)
        (msg
           (Printf.sprintf "commit records drained on %s"
              st.Citus.State.local.Cluster.Topology.node_name))
        0
        (Citus.Twopc.commit_record_count st))
    citus.Citus.Api.states;
  (* catalog replicas advanced in lockstep: same version, same
     placement map everywhere *)
  let origin = citus.Citus.Api.metadata in
  let placement_map meta =
    List.map
      (fun (sh : Citus.Metadata.shard) ->
        ( sh.Citus.Metadata.shard_id,
          List.sort String.compare
            (Citus.Metadata.placements meta sh.Citus.Metadata.shard_id) ))
      (Citus.Metadata.shards_of meta "accounts")
  in
  List.iter
    (fun (st : Citus.State.t) ->
      let name = st.Citus.State.local.Cluster.Topology.node_name in
      Alcotest.(check int)
        (msg (Printf.sprintf "catalog version in lockstep on %s" name))
        (Citus.Metadata.version origin)
        (Citus.Metadata.version st.Citus.State.metadata);
      if placement_map st.Citus.State.metadata <> placement_map origin then
        Alcotest.fail
          (msg (Printf.sprintf "placement map diverged on %s" name)))
    citus.Citus.Api.states;
  (* full replication restored, replicas bit-identical *)
  Alcotest.(check int)
    (msg "no inactive placements")
    0
    (List.length (Citus.Metadata.inactive_placements origin));
  List.iter
    (fun (sh : Citus.Metadata.shard) ->
      let shard_table = Citus.Metadata.shard_name sh in
      let replicas =
        Citus.Metadata.placements origin sh.Citus.Metadata.shard_id
      in
      let rows_on node =
        let inst =
          (Cluster.Topology.find_node cluster node).Cluster.Topology.instance
        in
        let rs = Engine.Instance.connect inst in
        (exec rs
           (Printf.sprintf "SELECT key, balance FROM %s ORDER BY key"
              shard_table))
          .Engine.Instance.rows
      in
      match replicas with
      | [] -> Alcotest.fail (msg (shard_table ^ " lost every placement"))
      | first :: rest ->
        let reference = rows_on first in
        List.iter
          (fun node ->
            if rows_on node <> reference then
              Alcotest.fail
                (msg (Printf.sprintf "%s diverged on %s" shard_table node)))
          rest)
    (Citus.Metadata.shards_of origin "accounts")

(* --- one full storm --- *)

let run_storm ~seed () =
  let cluster, citus = make_cluster ~seed ~replication:2 in
  Obs.Trace.set_enabled (Cluster.Topology.trace cluster) true;
  let fault = fault_of cluster in
  let clock = cluster.Cluster.Topology.clock in
  let sched_rng = Random.State.make [| seed; 0x3fa9 |] in
  let wl_rng = Random.State.make [| seed; 0x0b5e |] in
  schedule_faults cluster fault sched_rng;
  let coords = coordinating_nodes cluster in
  let srefs =
    List.map (fun n -> (n, ref (Citus.Api.connect_via citus n))) coords
  in
  let torn_reads = ref 0 in
  let outcomes = ref [] in
  for i = 1 to n_txns do
    Sim.Clock.advance clock clock_step;
    let node, sref = List.nth srefs (i mod List.length srefs) in
    let k1 = Random.State.int wl_rng n_keys in
    let k2 = (k1 + 1 + Random.State.int wl_rng (n_keys - 1)) mod n_keys in
    let amount = 1 + Random.State.int wl_rng 10 in
    let o = transfer citus node sref ~k1 ~k2 ~amount in
    outcomes :=
      (node.Cluster.Topology.node_name, outcome_name o) :: !outcomes;
    (* mid-storm snapshot reads from a different coordinator than the
       one that just wrote: any sum that returns at all must be the
       conserved total — a torn read is an invariant violation, not a
       transient *)
    if i mod 5 = 0 then begin
      let rnode, rref = List.nth srefs ((i + 1) mod List.length srefs) in
      ensure_session citus rnode rref;
      match one_int !rref "SELECT sum(balance) FROM accounts" with
      | total -> if total <> expected_total then incr torn_reads
      | exception _ -> ()
    end;
    if i = n_txns / 2 then (try Citus.Api.maintenance citus with _ -> ())
  done;
  quiesce cluster citus;
  write_pass citus;
  Citus.Api.maintenance citus;
  let s = Citus.Api.connect citus in
  let total = one_int s "SELECT sum(balance) FROM accounts" in
  (cluster, citus, List.rev !outcomes, total, !torn_reads)

let chaos_seeds =
  match Sys.getenv_opt "CHAOS_SEEDS" with
  | None -> 6
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ ->
      invalid_arg
        (Printf.sprintf "CHAOS_SEEDS must be a positive integer, got %S" v))

let seed_matrix = List.init chaos_seeds (fun i -> i + 21)

let test_seed seed () =
  let cluster, citus, outcomes, _total, torn = run_storm ~seed () in
  check_invariants ~seed cluster citus;
  Alcotest.(check int)
    (Printf.sprintf "[seed %d] no torn snapshot reads" seed)
    0 torn;
  Alcotest.(check bool)
    (Printf.sprintf "[seed %d] some transfers committed" seed)
    true
    (List.exists (fun (_, o) -> String.equal o "committed") outcomes);
  (* the whole point of MX: transactions were coordinated off the
     bootstrap coordinator *)
  let metrics = Cluster.Topology.metrics cluster in
  Alcotest.(check bool)
    (Printf.sprintf "[seed %d] workers coordinated transactions" seed)
    true
    (Obs.Metrics.counter_value metrics
       Obs.Metric_names.mx_worker_coordinated_txns
    > 0);
  Alcotest.(check bool)
    (Printf.sprintf "[seed %d] metadata syncs recorded" seed)
    true
    (Obs.Metrics.counter_value metrics Obs.Metric_names.mx_metadata_syncs
    > 0)

(* --- bit-for-bit reproducibility --- *)

let observable (cluster, _citus, outcomes, total, torn) =
  let obs = Cluster.Topology.obs cluster in
  ( Sim.Fault.trace (fault_of cluster),
    List.map (fun (n, o) -> n ^ ":" ^ o) outcomes,
    total,
    torn,
    Obs.Metrics.render (Obs.Metrics.snapshot obs.Obs.metrics),
    Obs.Trace.render_tree (Obs.Trace.spans obs.Obs.trace) )

let test_reproducible () =
  let trace_a, outcomes_a, total_a, torn_a, metrics_a, spans_a =
    observable (run_storm ~seed:25 ())
  in
  let trace_b, outcomes_b, total_b, torn_b, metrics_b, spans_b =
    observable (run_storm ~seed:25 ())
  in
  Alcotest.(check (list string)) "same fault trace" trace_a trace_b;
  Alcotest.(check (list string)) "same (node, outcome) stream" outcomes_a
    outcomes_b;
  Alcotest.(check int) "same total" total_a total_b;
  Alcotest.(check int) "same torn-read count" torn_a torn_b;
  Alcotest.(check string) "bit-identical metric snapshot" metrics_a metrics_b;
  Alcotest.(check (list string)) "bit-identical span tree" spans_a spans_b;
  let trace_c, _, _, _, _, _ = observable (run_storm ~seed:26 ()) in
  Alcotest.(check bool) "different seed, different schedule" true
    (trace_a <> trace_c)

(* --- targeted: the origin worker crashes mid-fan-out --- *)

(* A worker-coordinated transfer whose COMMIT PREPARED fan-out is cut
   off, then the ORIGIN worker itself crashes. The participants hold
   prepared transactions in the origin's gid namespace; while the origin
   is down nobody may guess the outcome (its commit records are the
   only truth), and once it restarts, recovery must finish the commit
   from the origin's records. *)
let test_origin_crash_mid_fanout () =
  let cluster, citus = make_cluster ~seed:77 ~replication:1 in
  let fault = fault_of cluster in
  let origin = List.hd cluster.Cluster.Topology.workers in
  let origin_name = origin.Cluster.Topology.node_name in
  (* two keys on two nodes, neither the origin: a pure fan-out 2PC *)
  let foreign k = not (String.equal (node_of citus k) origin_name) in
  let k1 =
    let rec go k = if foreign k then k else go (k + 1) in
    go 0
  in
  let k2 =
    let rec go k =
      if foreign k && not (String.equal (node_of citus k) (node_of citus k1))
      then k
      else go (k + 1)
    in
    go (k1 + 1)
  in
  let origin_st =
    List.find
      (fun (st : Citus.State.t) ->
        String.equal st.Citus.State.local.Cluster.Topology.node_name
          origin_name)
      citus.Citus.Api.states
  in
  let s = Citus.Api.connect_via citus origin in
  ignore (exec s "BEGIN");
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance - 7 WHERE key = %d" k1));
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance + 7 WHERE key = %d" k2));
  (* cut the fan-out: both participants' COMMIT PREPARED will fail after
     the origin's local commit (commit records durable on the origin) *)
  Citus.State.inject_failure origin_st ~node:(node_of citus k1)
    ~matching:"COMMIT PREPARED";
  Citus.State.inject_failure origin_st ~node:(node_of citus k2)
    ~matching:"COMMIT PREPARED";
  ignore (exec s "COMMIT");
  Citus.State.clear_failures origin_st;
  Alcotest.(check bool) "commit records durable on the origin worker" true
    (Citus.Twopc.commit_record_count origin_st > 0);
  (* both participants still hold prepared txns in the origin's namespace *)
  let prepared_on node =
    List.length
      (Txn.Manager.prepared_transactions
         (Engine.Instance.txn_manager
            (Cluster.Topology.find_node cluster node).Cluster.Topology.instance))
  in
  Alcotest.(check int) "participant 1 in doubt" 1 (prepared_on (node_of citus k1));
  Alcotest.(check int) "participant 2 in doubt" 1 (prepared_on (node_of citus k2));
  (* now the origin crashes: its commit records are unreachable *)
  Sim.Fault.crash_now fault origin_name;
  (try Citus.Api.maintenance citus with _ -> ());
  Alcotest.(check int)
    "origin down: participant 1 stays in doubt (no guessing)" 1
    (prepared_on (node_of citus k1));
  Alcotest.(check int)
    "origin down: participant 2 stays in doubt (no guessing)" 1
    (prepared_on (node_of citus k2));
  (* origin returns: recovery finishes the commit from its records *)
  Sim.Fault.restart_now fault origin_name;
  Sim.Clock.advance cluster.Cluster.Topology.clock 30.0;
  for _ = 1 to 3 do
    Citus.Api.maintenance citus
  done;
  let s = Citus.Api.connect citus in
  Alcotest.(check int) "debit committed by recovery" (initial_balance - 7)
    (one_int s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k1));
  Alcotest.(check int) "credit committed by recovery" (initial_balance + 7)
    (one_int s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k2));
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Alcotest.(check int)
        (Printf.sprintf "no prepared transactions left on %s"
           n.Cluster.Topology.node_name)
        0 (prepared_on n.Cluster.Topology.node_name))
    (Cluster.Topology.all_nodes cluster);
  Alcotest.(check int) "origin's commit records drained" 0
    (Citus.Twopc.commit_record_count origin_st);
  Alcotest.(check bool) "foreign-namespace resolutions counted" true
    (Obs.Metrics.counter_value
       (Cluster.Topology.metrics cluster)
       Obs.Metric_names.mx_foreign_gids_resolved
    >= 0)

(* --- targeted: the bootstrap coordinator is down, a worker coordinates --- *)

let test_worker_coordinates_without_coordinator () =
  let cluster, citus = make_cluster ~seed:78 ~replication:1 in
  let fault = fault_of cluster in
  Sim.Fault.crash_now fault "coordinator";
  let origin = List.hd cluster.Cluster.Topology.workers in
  let s = Citus.Api.connect_via citus origin in
  (* a genuine multi-node 2PC, planned and committed with the bootstrap
     coordinator dead *)
  let k1 = 0 in
  let k2 =
    let rec go k =
      if String.equal (node_of citus k) (node_of citus k1) then go (k + 1)
      else k
    in
    go 1
  in
  ignore (exec s "BEGIN");
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance - 5 WHERE key = %d" k1));
  ignore
    (exec s
       (Printf.sprintf
          "UPDATE accounts SET balance = balance + 5 WHERE key = %d" k2));
  ignore (exec s "COMMIT");
  Alcotest.(check int) "debit visible via the worker" (initial_balance - 5)
    (one_int s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k1));
  Alcotest.(check int) "credit visible via the worker" (initial_balance + 5)
    (one_int s (Printf.sprintf "SELECT balance FROM accounts WHERE key = %d" k2));
  Sim.Fault.restart_now fault "coordinator";
  Sim.Clock.advance cluster.Cluster.Topology.clock 30.0;
  for _ = 1 to 3 do
    Citus.Api.maintenance citus
  done;
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Alcotest.(check int)
        (Printf.sprintf "no prepared transactions left on %s"
           n.Cluster.Topology.node_name)
        0
        (List.length
           (Txn.Manager.prepared_transactions
              (Engine.Instance.txn_manager n.Cluster.Topology.instance))))
    (Cluster.Topology.all_nodes cluster);
  Alcotest.(check bool) "counted as worker-coordinated" true
    (Obs.Metrics.counter_value
       (Cluster.Topology.metrics cluster)
       Obs.Metric_names.mx_worker_coordinated_txns
    > 0)

let test_metadata_sync_knob () =
  (* the set_config spelling of metadata sync: idempotent 'on' (also
     after the UDF already ran), and 'off' is a clean typed error —
     demotion is unsupported, never a half-synced cluster *)
  let cluster =
    Cluster.Topology.create ~workers:2 ~fault_seed:1 ~sched_seed:1 ()
  in
  let citus = Citus.Api.install ~shard_count:4 cluster in
  let s = Citus.Api.connect citus in
  ignore (exec s "SELECT citus_set_config('enable_metadata_sync', 'on')");
  ignore (exec s "SELECT citus_set_config('enable_metadata_sync', 'on')");
  Alcotest.(check int) "every node installed"
    (List.length (Cluster.Topology.all_nodes cluster))
    (List.length citus.Citus.Api.states);
  List.iter
    (fun (n : Cluster.Topology.node) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s promoted" n.Cluster.Topology.node_name)
        true
        (n.Cluster.Topology.role = Cluster.Topology.Coordinator))
    (Cluster.Topology.data_nodes cluster);
  match exec s "SELECT citus_set_config('enable_metadata_sync', 'off')" with
  | _ -> Alcotest.fail "disabling metadata sync must be rejected"
  | exception _ -> ()

let () =
  Alcotest.run "mx"
    [
      ( "seed-matrix",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Quick (test_seed seed))
          seed_matrix );
      ( "reproducibility",
        [ Alcotest.test_case "same seed, same storm" `Quick test_reproducible ]
      );
      ( "targeted-mx",
        [
          Alcotest.test_case "origin worker crash mid-fan-out" `Quick
            test_origin_crash_mid_fanout;
          Alcotest.test_case "worker coordinates without the coordinator"
            `Quick test_worker_coordinates_without_coordinator;
          Alcotest.test_case "metadata sync via set_config" `Quick
            test_metadata_sync_knob;
        ] );
    ]
